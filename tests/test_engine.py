"""Engine tests: strategies, relevance semantics, limits, faults."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy, TypingMode
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import (
    FailingService,
    StaticService,
    TableService,
)
from repro.services.registry import ServiceBus, ServiceRegistry, UnknownServiceError
from repro.services.catalog import ServiceFault
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
    paper_query,
)

EXPECTED_FIG1_ROWS = {
    ("Jo Mama", "75, 2nd Av."),
    ("In Delis", "2nd Ave."),
    ("Liberty Diner", "2 Liberty Pl."),
}


def run_fig1(**config_kwargs):
    doc = figure_1_document()
    bus = ServiceBus(figure_1_registry())
    engine = LazyQueryEvaluator(
        bus, schema=figure_1_schema(), config=EngineConfig(**config_kwargs)
    )
    return engine.evaluate(paper_query(), doc), bus


@pytest.mark.parametrize(
    "strategy",
    [
        Strategy.NAIVE,
        Strategy.TOP_DOWN,
        Strategy.LAZY_LPQ,
        Strategy.LAZY_NFQ,
        Strategy.LAZY_NFQ_TYPED,
    ],
)
def test_all_strategies_compute_the_full_result(strategy):
    outcome, _ = run_fig1(strategy=strategy)
    assert outcome.value_rows() == EXPECTED_FIG1_ROWS
    assert outcome.metrics.completed


def test_naive_materialises_everything():
    outcome, bus = run_fig1(strategy=Strategy.NAIVE)
    assert not outcome.document.function_nodes()
    assert outcome.metrics.calls_invoked == 11


def test_lazy_nfq_prunes_irrelevant_hotels():
    outcome, bus = run_fig1(strategy=Strategy.LAZY_NFQ)
    per_service = bus.log.calls_by_service()
    # The three non-matching hotels' getRating calls never fire.
    assert per_service.get("getRating", 0) == 1  # only the nested one
    assert outcome.metrics.calls_invoked == 4


def test_typed_mode_also_prunes_museums():
    untyped, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    typed, bus = run_fig1(strategy=Strategy.LAZY_NFQ_TYPED)
    assert typed.metrics.calls_invoked < untyped.metrics.calls_invoked
    assert "getNearbyMuseums" not in bus.log.calls_by_service()


def test_exact_and_lenient_typing_agree_here():
    lenient, _ = run_fig1(strategy=Strategy.LAZY_NFQ_TYPED)
    exact, _ = run_fig1(
        strategy=Strategy.LAZY_NFQ_TYPED, typing=TypingMode.EXACT
    )
    assert lenient.value_rows() == exact.value_rows()
    assert lenient.metrics.calls_invoked == exact.metrics.calls_invoked


def test_invoked_calls_leave_no_relevant_calls_behind():
    outcome, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    # Completeness (Definition 3/4): after the rewriting, every NFQ
    # returns empty — i.e. the remaining calls are irrelevant.
    from repro.lazy.relevance import build_nfqs
    from repro.pattern.match import Matcher

    for rq in build_nfqs(paper_query()):
        assert not Matcher(rq.pattern).evaluate(outcome.document).distinct_nodes()


def test_document_keeps_irrelevant_calls():
    outcome, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    remaining = {n.label for n in outcome.document.function_nodes()}
    assert "getRating" in remaining  # the non-matching hotels keep theirs


def test_fguide_mode_matches_plain_mode():
    plain, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    guided, _ = run_fig1(strategy=Strategy.LAZY_NFQ, use_fguide=True)
    assert guided.value_rows() == plain.value_rows()
    assert guided.metrics.calls_invoked == plain.metrics.calls_invoked
    assert guided.metrics.guide_lookups > 0


def test_parallel_rounds_reduce_round_count():
    sequential, _ = run_fig1(strategy=Strategy.LAZY_NFQ, parallel=False)
    parallel, _ = run_fig1(strategy=Strategy.LAZY_NFQ, parallel=True)
    assert parallel.value_rows() == sequential.value_rows()
    assert parallel.metrics.invocation_rounds <= sequential.metrics.invocation_rounds
    assert (
        parallel.metrics.simulated_parallel_s
        <= sequential.metrics.simulated_sequential_s
    )


def test_plain_nfqa_without_layers_matches():
    layered, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    plain, _ = run_fig1(strategy=Strategy.LAZY_NFQ, use_layers=False)
    assert plain.value_rows() == layered.value_rows()


def test_top_down_restarts_are_counted():
    outcome, _ = run_fig1(strategy=Strategy.TOP_DOWN)
    # One relevance sweep per invocation (the "restart" cost).
    assert outcome.metrics.invocation_rounds == outcome.metrics.calls_invoked
    assert outcome.metrics.relevance_evaluations >= outcome.metrics.calls_invoked


def test_max_invocations_guard_reports_incomplete():
    outcome, _ = run_fig1(strategy=Strategy.NAIVE, max_invocations=3)
    assert not outcome.metrics.completed
    assert outcome.metrics.calls_invoked == 3


def test_lazy_budget_guard():
    outcome, _ = run_fig1(strategy=Strategy.LAZY_NFQ, max_invocations=1)
    assert not outcome.metrics.completed
    assert outcome.metrics.calls_invoked == 1


def test_unknown_service_raises():
    doc = build_document(E("r", C("ghost")))
    bus = ServiceBus(ServiceRegistry([]))
    engine = LazyQueryEvaluator(bus, config=EngineConfig(strategy=Strategy.NAIVE))
    with pytest.raises(UnknownServiceError):
        engine.evaluate(parse_pattern("/r/x"), doc)


def test_fault_policy_raise():
    registry = ServiceRegistry(
        [FailingService("f", StaticService("inner", [E("x", V("1"))]))]
    )
    doc = build_document(E("r", C("f")))
    engine = LazyQueryEvaluator(
        ServiceBus(registry), config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    with pytest.raises(ServiceFault):
        engine.evaluate(parse_pattern("/r/x"), doc)


def test_fault_policy_skip_continues():
    registry = ServiceRegistry(
        [
            FailingService("f", StaticService("inner", [E("x", V("1"))])),
            StaticService("g", [E("x", V("2"))]),
        ]
    )
    doc = build_document(E("r", C("f"), C("g")))
    engine = LazyQueryEvaluator(
        ServiceBus(registry),
        config=EngineConfig(
            strategy=Strategy.LAZY_NFQ, fault_policy=FaultPolicy.SKIP
        ),
    )
    out = engine.evaluate(parse_pattern("/r/x/$V"), doc)
    assert out.value_rows() == {("2",)}
    assert out.metrics.faults == 1


def test_snapshot_empty_document_short_circuits():
    doc = build_document(E("r"))
    bus = ServiceBus(ServiceRegistry([]))
    out = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(parse_pattern("/r/x"), doc)
    assert out.metrics.calls_invoked == 0
    assert len(out.rows) == 0


def test_dynamic_new_services_are_refined_in():
    """A call returns a call to a service unknown at analysis start;
    typed refinement must pick it up (Section 5's dynamic note)."""
    inner = StaticService(
        "lateService",
        [E("x", V("42"))],
        signature=None,
    )
    outer = StaticService("starter", [C("lateService", V("k"))])
    registry = ServiceRegistry([inner, outer])
    doc = build_document(E("r", C("starter", V("k"))))
    engine = LazyQueryEvaluator(
        ServiceBus(registry),
        config=EngineConfig(
            strategy=Strategy.LAZY_NFQ_TYPED, typing=TypingMode.LENIENT
        ),
    )
    out = engine.evaluate(parse_pattern("/r/x/$V"), doc)
    assert out.value_rows() == {("42",)}


def test_metrics_summary_renders():
    outcome, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    text = outcome.metrics.summary()
    assert "lazy-nfq" in text
    assert "calls=4" in text


def test_rounds_are_recorded():
    outcome, _ = run_fig1(strategy=Strategy.LAZY_NFQ)
    assert outcome.rounds
    assert sum(len(r.calls) for r in outcome.rounds) == 4


def test_validate_io_accepts_conforming_services():
    outcome, _ = run_fig1(strategy=Strategy.LAZY_NFQ, validate_io=True)
    assert outcome.value_rows() == EXPECTED_FIG1_ROWS
    assert outcome.metrics.io_violations == 0


def test_validate_io_raises_on_bad_output():
    from repro.schema.schema import SchemaError
    from repro.services.catalog import make_signature

    bad = StaticService(
        "liar",
        [E("museum")],  # claims restaurant*, returns museums
        signature=make_signature("liar", "data", "restaurant*"),
    )
    registry = ServiceRegistry([bad])
    doc = build_document(E("r", C("liar", V("k"))))
    engine = LazyQueryEvaluator(
        ServiceBus(registry),
        config=EngineConfig(strategy=Strategy.NAIVE, validate_io=True),
    )
    with pytest.raises(SchemaError):
        engine.evaluate(parse_pattern("/r/x"), doc)


def test_validate_io_skip_policy_counts_violations():
    from repro.services.catalog import make_signature

    bad = StaticService(
        "liar",
        [E("museum")],
        signature=make_signature("liar", "data", "restaurant*"),
    )
    registry = ServiceRegistry([bad])
    doc = build_document(E("r", C("liar", V("k"))))
    engine = LazyQueryEvaluator(
        ServiceBus(registry),
        config=EngineConfig(
            strategy=Strategy.NAIVE,
            validate_io=True,
            fault_policy=FaultPolicy.SKIP,
        ),
    )
    outcome = engine.evaluate(parse_pattern("/r/x"), doc)
    assert outcome.metrics.io_violations == 1
