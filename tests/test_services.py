"""Unit tests for services: reply protocols, catalog, accounting."""

import pytest

from repro.axml.builder import C, E, V
from repro.pattern.nodes import EdgeKind
from repro.pattern.parse import parse_pattern
from repro.services.catalog import (
    EmptyService,
    FailingService,
    SequenceService,
    ServiceFault,
    StaticService,
    TableService,
    first_value,
    make_signature,
)
from repro.services.registry import (
    ServiceBus,
    ServiceCall,
    ServiceRegistry,
    UnknownServiceError,
)
from repro.services.service import CallableService, PushMode
from repro.services.simulation import InvocationLog, NetworkModel


def restos_template():
    return [
        E("restaurant", E("name", V("good")), E("rating", V("5"))),
        E("restaurant", E("name", V("bad")), E("rating", V("2"))),
        E("restaurant", E("name", V("maybe")), E("rating", C("getRating", V("k")))),
    ]


def test_static_service_clones_template():
    svc = StaticService("s", [E("a", V("1"))])
    first = svc.produce([])
    second = svc.produce([])
    assert first[0] is not second[0]
    assert first[0].structurally_equal(second[0])
    assert svc.invocation_count == 0  # produce() alone does not count


def test_table_service_keys_on_first_value():
    svc = TableService("t", {"k1": [E("a")], "k2": [E("b")]}, default=[E("d")])
    assert svc.produce([V("k1")])[0].label == "a"
    assert svc.produce([E("wrap", V("k2"))])[0].label == "b"
    assert svc.produce([V("nope")])[0].label == "d"
    assert svc.produce([])[0].label == "d"


def test_first_value_scans_parameters():
    assert first_value([E("x"), E("y", V("deep"))]) == "deep"
    assert first_value([]) is None


def test_sequence_service_steps_then_repeats():
    svc = SequenceService("seq", [[E("a")], [E("b")]])
    assert svc.produce([])[0].label == "a"
    assert svc.produce([])[0].label == "b"
    assert svc.produce([])[0].label == "b"


def test_empty_and_callable_services():
    assert EmptyService("e").produce([]) == []
    svc = CallableService("c", lambda params: [V(str(len(params)))])
    assert svc.produce([E("x"), E("y")])[0].label == "2"


def test_invoke_counts_invocations():
    svc = StaticService("s", [])
    svc.invoke([])
    svc.invoke([])
    assert svc.invocation_count == 2


def test_failing_service_recovers():
    svc = FailingService("f", StaticService("inner", [E("ok")]), failures=2)
    with pytest.raises(ServiceFault):
        svc.produce([])
    with pytest.raises(ServiceFault):
        svc.produce([])
    assert svc.produce([])[0].label == "ok"


def test_plain_invoke_returns_full_forest():
    svc = StaticService("s", restos_template())
    reply = svc.invoke([])
    assert len(reply.forest) == 3
    assert reply.push_mode is PushMode.NONE
    assert not reply.is_bindings


def test_filtered_push_keeps_matches_and_intensional_trees():
    svc = StaticService("s", restos_template())
    pushed = parse_pattern('/restaurant[rating="5"][name=$X]')
    reply = svc.invoke([], pushed=pushed, push_mode=PushMode.FILTERED)
    names = []
    for tree in reply.forest:
        names.append(tree.children[0].children[0].label)
    # "good" matches; "maybe" has an embedded call (kept conservatively);
    # "bad" is provably useless and dropped.
    assert names == ["good", "maybe"]


def test_bindings_push_on_extensional_results():
    svc = StaticService("s", restos_template()[:2])  # drop intensional one
    pushed = parse_pattern('/restaurant[rating="5"][name=$X]')
    reply = svc.invoke([], pushed=pushed, push_mode=PushMode.BINDINGS)
    assert reply.is_bindings
    assert reply.forest == []
    assert [row.as_dict() for row in reply.bindings] == [{"X": "good"}]


def test_bindings_push_degrades_with_intensional_results():
    svc = StaticService("s", restos_template())
    pushed = parse_pattern('/restaurant[rating="5"][name=$X]')
    reply = svc.invoke([], pushed=pushed, push_mode=PushMode.BINDINGS)
    assert not reply.is_bindings
    assert reply.push_mode is PushMode.FILTERED


def test_push_respects_descendant_anchor():
    svc = StaticService("s", [E("wrap", E("hit", V("x")))])
    pushed = parse_pattern("/hit")
    child = svc.invoke([], pushed=pushed, push_mode=PushMode.FILTERED)
    assert child.forest == []
    deep = svc.invoke(
        [],
        pushed=pushed,
        push_mode=PushMode.FILTERED,
        anchor_edge=EdgeKind.DESCENDANT,
    )
    assert len(deep.forest) == 1


def test_push_capability_flag():
    svc = StaticService("s", restos_template(), supports_push=False)
    reply = svc.invoke(
        [], pushed=parse_pattern('/restaurant[rating="5"]'),
        push_mode=PushMode.FILTERED,
    )
    assert len(reply.forest) == 3  # ignored the push


def test_registry_resolution():
    registry = ServiceRegistry([StaticService("a", []), StaticService("b", [])])
    assert registry.knows("a")
    assert registry.names() == ["a", "b"]
    assert len(registry) == 2
    with pytest.raises(UnknownServiceError):
        registry.resolve("c")
    with pytest.raises(ValueError):
        registry.register(StaticService("a", []))


def test_registry_merges_signatures_into_schema():
    sig = make_signature("s", "data", "a*")
    registry = ServiceRegistry([StaticService("s", [], signature=sig)])
    schema = registry.schema_with_signatures()
    assert schema.signature("s").output_type == sig.output_type


def test_bus_accounts_bytes_and_time():
    svc = StaticService("s", [E("payload", V("x" * 100))], latency_s=0.5)
    bus = ServiceBus(ServiceRegistry([svc]), network=NetworkModel(per_kb_s=1.0))
    outcome = bus.invoke(
        ServiceCall(service="s", parameters=[V("key")], call_node_id=7)
    )
    reply, record = outcome.reply, outcome.record
    assert record.service_name == "s"
    assert record.call_node_id == 7
    assert record.request_bytes == 3
    assert record.response_bytes > 100
    assert record.simulated_time_s > 0.5
    assert bus.log.call_count == 1
    assert bus.log.total_bytes == record.request_bytes + record.response_bytes


def test_bus_counts_pushed_query_in_request_bytes():
    svc = StaticService("s", [])
    bus = ServiceBus(ServiceRegistry([svc]))
    plain = bus.invoke(ServiceCall(service="s", parameters=[V("k")])).record
    pushed = bus.invoke(
        ServiceCall(
            service="s",
            parameters=[V("k")],
            pushed=parse_pattern('/restaurant[rating="5"]'),
            push_mode=PushMode.FILTERED,
        )
    ).record
    assert pushed.request_bytes > plain.request_bytes
    assert pushed.pushed_query is not None


def test_bus_counts_new_calls_in_reply():
    svc = StaticService("s", [E("a", C("f"), C("g"))])
    bus = ServiceBus(ServiceRegistry([svc]))
    record = bus.invoke(ServiceCall(service="s")).record
    assert record.new_calls == 2


def test_legacy_invoke_shim_warns_but_works():
    svc = StaticService("s", [E("a")])
    bus = ServiceBus(ServiceRegistry([svc]))
    with pytest.warns(DeprecationWarning, match="ServiceBus.invoke"):
        reply, record = bus.invoke("s", [V("k")])
    assert reply.forest and not record.fault


def test_new_invoke_rejects_stray_positionals():
    svc = StaticService("s", [E("a")])
    bus = ServiceBus(ServiceRegistry([svc]))
    with pytest.raises(TypeError):
        bus.invoke(ServiceCall(service="s"), [V("k")])


def test_log_aggregates():
    log = InvocationLog()
    log.record("a", 1, 10, 20, 0.1, None, "none", False, 0)
    log.record("a", 2, 5, 5, 0.1, None, "none", False, 1)
    log.record("b", 3, 1, 1, 0.1, None, "none", False, 0)
    assert log.calls_by_service() == {"a": 2, "b": 1}
    assert log.total_request_bytes == 16
    assert log.total_response_bytes == 26
    log.reset()
    assert log.call_count == 0
