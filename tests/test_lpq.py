"""Unit tests for LPQ generation (Section 3.1)."""

from repro.lazy.relevance import RelevanceKind, linear_path_queries
from repro.pattern.match import snapshot_result
from repro.pattern.parse import parse_pattern
from repro.workloads.hotels import figure_1_document, paper_query


def test_lpqs_are_linear_and_end_in_star_functions():
    lpqs = linear_path_queries(paper_query())
    for lpq in lpqs:
        assert lpq.kind is RelevanceKind.LPQ
        # Linear: every node has exactly one child until the output.
        node = lpq.pattern.root
        while node.children:
            assert len(node.children) == 1
            node = node.children[0]
        assert node.is_function
        assert node.function_names is None
        assert node.is_result


def test_lpq_set_matches_paper_shape():
    """Section 3.1 lists the LPQ family for the Figure 4 query."""
    lpqs = linear_path_queries(paper_query(), dedupe=False)
    rendered = {rq.pattern.to_string() for rq in lpqs}
    expected = {
        "/hotels[()!]",
        "/hotels[hotel[()!]]",
        "/hotels[hotel[name[()!]]]",
        "/hotels[hotel[rating[()!]]]",
        "/hotels[hotel[nearby[//()!]]]",
        "/hotels[hotel[nearby[//restaurant[()!]]]]",
        "/hotels[hotel[nearby[//restaurant[name[()!]]]]]",
        "/hotels[hotel[nearby[//restaurant[address[()!]]]]]",
        "/hotels[hotel[nearby[//restaurant[rating[()!]]]]]",
    }
    assert rendered == expected


def test_lpq_dedup_absorbs_everything_below_a_descendant_star():
    lpqs = linear_path_queries(paper_query())
    rendered = {rq.pattern.to_string() for rq in lpqs}
    # nearby//() subsumes all restaurant-level LPQs.
    assert rendered == {
        "/hotels[()!]",
        "/hotels[hotel[()!]]",
        "/hotels[hotel[name[()!]]]",
        "/hotels[hotel[rating[()!]]]",
        "/hotels[hotel[nearby[//()!]]]",
    }


def test_lpq_dedup_absorbs_shared_positions():
    # name, rating, nearby, address all have parent 'hotel': one LPQ
    # covers all three /hotels/hotel/() targets.
    lpqs = linear_path_queries(paper_query())
    hotel_level = [
        rq
        for rq in lpqs
        if rq.pattern.to_string() == "/hotels[hotel[()!]]"
    ]
    assert len(hotel_level) == 1
    assert len(hotel_level[0].all_target_uids) == 3


def test_lpqs_retrieve_every_call_on_query_paths():
    doc = figure_1_document()
    lpqs = linear_path_queries(paper_query())
    retrieved = set()
    from repro.pattern.match import Matcher

    for rq in lpqs:
        for node in Matcher(rq.pattern).evaluate(doc).distinct_nodes():
            retrieved.add(node.node_id)
    # Everything except nothing: all calls of Figure 1 sit on query paths.
    all_calls = {n.node_id for n in doc.function_nodes()}
    assert retrieved == all_calls


def test_lpqs_exclude_off_path_calls():
    doc_query = parse_pattern("/root/a/b")
    from repro.axml.builder import C, E, V, build_document
    from repro.pattern.match import Matcher

    doc = build_document(
        E("root", E("a", C("onpath")), E("z", C("offpath")))
    )
    retrieved = set()
    for rq in linear_path_queries(doc_query):
        for node in Matcher(rq.pattern).evaluate(doc).distinct_nodes():
            retrieved.add(node.label)
    assert retrieved == {"onpath"}


def test_lpq_descendant_tail_flag():
    lpqs = linear_path_queries(paper_query())
    tails = {
        rq.pattern.to_string(): rq.descendant_tail for rq in lpqs
    }
    assert tails["/hotels[hotel[nearby[//()!]]]"] is True
    assert tails["/hotels[hotel[()!]]"] is False


def test_variables_and_values_become_stars_on_the_spine():
    q = parse_pattern("/a/$X/b")
    lpqs = linear_path_queries(q)
    rendered = {rq.pattern.to_string() for rq in lpqs}
    assert "/a[*[()!]]" in rendered  # the path through the variable
