"""Unit tests for tree-pattern containment and de-duplication."""

from repro.pattern.containment import (
    dedupe_patterns,
    structurally_identical,
    subsumes,
)
from repro.pattern.parse import parse_pattern


def q(text):
    return parse_pattern(text)


def test_identical_queries_subsume_each_other():
    assert subsumes(q("/a/b"), q("/a/b"))
    assert subsumes(q("/a/b/()"), q("/a/b/()"))


def test_descendant_subsumes_child_step():
    general, specific = q("/a//b"), q("/a/b")
    assert subsumes(general, specific)
    assert not subsumes(specific, general)


def test_star_subsumes_label():
    assert subsumes(q("/a/*"), q("/a/b"))
    assert not subsumes(q("/a/b"), q("/a/*"))


def test_star_function_subsumes_named_function():
    assert subsumes(q("/a/()"), q("/a/f()"))
    assert not subsumes(q("/a/f()"), q("/a/()"))
    assert subsumes(q("/a/(f|g)()"), q("/a/f()"))
    assert not subsumes(q("/a/f()"), q("/a/(f|g)()"))


def test_extra_predicate_makes_query_more_specific():
    assert subsumes(q("/a/b"), q("/a[c]/b"))
    assert not subsumes(q("/a[c]/b"), q("/a/b"))


def test_result_nodes_must_align():
    # Same shape, different result node: neither contains the other.
    assert not subsumes(q("/a/b!/c"), q("/a/b/c"))
    assert not subsumes(q("/a/b/c"), q("/a/b!/c"))


def test_value_constants_must_match():
    assert subsumes(q('/a["1"]'), q('/a["1"]'))
    assert not subsumes(q('/a["1"]'), q('/a["2"]'))


def test_descendant_maps_to_long_paths():
    assert subsumes(q("/a//d"), q("/a/b/c/d"))
    assert subsumes(q("/a//d"), q("/a//b/d"))


def test_queries_with_variables_fall_back_to_identity():
    v1, v2 = q("/a[b=$X]"), q("/a[b=$X]")
    assert subsumes(v1, v2)  # structurally identical
    assert not subsumes(q("/a//b[c=$X]"), q("/a/b[c=$X]"))  # conservative


def test_structurally_identical_is_strict():
    assert structurally_identical(q("/a/b"), q("/a/b"))
    assert not structurally_identical(q("/a/b"), q("/a//b"))
    assert not structurally_identical(q("/a/b"), q("/a/b!/c"))


def test_dedupe_drops_subsumed_queries():
    queries = [q("/a/b/()"), q("/a//()"), q("/a/b/()"), q("/x/()")]
    kept = dedupe_patterns(queries)
    rendered = {p.to_string() for p in kept}
    assert rendered == {"/a[//()!]", "/x[()!]"}


def test_dedupe_keeps_incomparable_queries():
    queries = [q("/a/b"), q("/a/c")]
    assert len(dedupe_patterns(queries)) == 2
