"""Robustness on very deep documents (no recursion-limit surprises)."""

import sys

import pytest

from repro.axml.builder import build_document
from repro.axml.node import call, element, value
from repro.pattern.match import snapshot_result
from repro.pattern.parse import parse_pattern
from repro.schema.schema import Schema

DEPTH = max(3000, sys.getrecursionlimit() * 2)


@pytest.fixture(scope="module")
def deep_document():
    root = element("root")
    cursor = root
    for _ in range(DEPTH):
        nxt = element("level")
        cursor.append(nxt)
        cursor = nxt
    cursor.append(value("leaf"))
    cursor.append(call("fetch", value("k")))
    return build_document(root)


def test_clone_is_depth_safe(deep_document):
    copy = deep_document.root.clone()
    assert copy.subtree_size() == deep_document.root.subtree_size()


def test_structural_equality_is_depth_safe(deep_document):
    copy = deep_document.root.clone()
    assert copy.structurally_equal(deep_document.root)
    # Perturb the leaf and re-check.
    node = copy
    while node.children and node.children[0].is_element:
        node = node.children[0]
    node.label = "changed"
    assert not copy.structurally_equal(deep_document.root)


def test_matching_is_depth_safe(deep_document):
    query = parse_pattern('/root//level/"leaf"')
    rows = snapshot_result(query, deep_document)
    assert len(rows) == 1  # the single leaf value


def test_validation_is_depth_safe(deep_document):
    schema = Schema()
    schema.declare_element("root", "level")
    schema.declare_element("level", "(level | data.fetch)")
    schema.declare_function("fetch", "data", "data")
    assert schema.validate_document(deep_document) == []


def test_stats_and_serialization_helpers_are_depth_safe(deep_document):
    stats = deep_document.stats()
    # leaf value sits at DEPTH+1; the call's parameter one deeper.
    assert stats.max_depth == DEPTH + 2
    assert stats.function_nodes == 1


def test_subtree_size_and_depth_are_depth_safe(deep_document):
    # root + DEPTH levels + leaf value + call + its parameter.
    assert deep_document.root.subtree_size() == DEPTH + 4
    node = deep_document.root
    while node.children and node.children[0].is_element:
        node = node.children[0]
    leaf = node.children[0]
    assert leaf.is_value and leaf.depth() == DEPTH + 1


def test_pretty_rendering_is_depth_safe(deep_document):
    text = deep_document.root.pretty()
    lines = text.splitlines()
    assert lines[0].startswith("<root>")
    assert len(lines) == deep_document.root.subtree_size()
    # Indentation tracks depth all the way down.
    assert lines[DEPTH].lstrip().startswith("<level>")


def test_etree_round_trip_is_depth_safe(deep_document):
    from repro.axml.xmlio import from_etree, to_etree

    back = from_etree(to_etree(deep_document.root))
    assert back.structurally_equal(deep_document.root)


def test_arena_mirror_is_depth_safe(deep_document):
    from repro.axml.arena import DocumentArena

    arena = DocumentArena(deep_document)
    try:
        assert arena.live_nodes == deep_document.root.subtree_size()
        assert arena.consistency_errors() == []
    finally:
        arena.detach()
