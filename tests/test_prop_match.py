"""Property tests for the matcher against a brute-force reference.

The reference implementation enumerates every homomorphism explicitly
(exponential, fine for tiny inputs); the production matcher must agree
on randomly generated documents and patterns.
"""

from hypothesis import given, settings, strategies as st

from repro.axml.builder import build_document
from repro.axml.node import Node, NodeKind, call, element, value
from repro.pattern.match import Matcher
from repro.pattern.nodes import EdgeKind, PatternKind, PatternNode
from repro.pattern.pattern import TreePattern

LABELS = ["a", "b", "c"]
VALUES = ["1", "2"]


# -- generators ----------------------------------------------------------------


@st.composite
def doc_trees(draw, depth=3):
    if depth == 0:
        return value(draw(st.sampled_from(VALUES)))
    kind = draw(st.sampled_from(["element", "element", "value", "call"]))
    if kind == "value":
        return value(draw(st.sampled_from(VALUES)))
    if kind == "call":
        return call(draw(st.sampled_from(["f", "g"])))
    node = element(draw(st.sampled_from(LABELS)))
    for child in draw(st.lists(doc_trees(depth=depth - 1), max_size=3)):
        node.append(child)
    return node


@st.composite
def documents(draw):
    root = element("root")
    for child in draw(st.lists(doc_trees(), min_size=1, max_size=3)):
        root.append(child)
    return build_document(root)


@st.composite
def pattern_trees(draw, depth=2):
    edge = draw(st.sampled_from([EdgeKind.CHILD, EdgeKind.DESCENDANT]))
    kind = draw(
        st.sampled_from(
            ["element", "element", "value", "star", "function"]
        )
    )
    if depth == 0 or kind == "value":
        return PatternNode(
            PatternKind.VALUE, draw(st.sampled_from(VALUES)), edge=edge
        )
    if kind == "function":
        names = draw(st.sampled_from([None, ["f"], ["f", "g"]]))
        return PatternNode(
            PatternKind.FUNCTION,
            "()",
            edge=edge,
            function_names=None if names is None else frozenset(names),
        )
    if kind == "star":
        node = PatternNode(PatternKind.STAR, "*", edge=edge)
    else:
        node = PatternNode(
            PatternKind.ELEMENT, draw(st.sampled_from(LABELS)), edge=edge
        )
    for child in draw(st.lists(pattern_trees(depth=depth - 1), max_size=2)):
        node.add_child(child)
    return node


@st.composite
def patterns(draw):
    root = PatternNode(PatternKind.ELEMENT, "root")
    for child in draw(st.lists(pattern_trees(), min_size=1, max_size=2)):
        root.add_child(child)
    # Mark one data node as the result.
    nodes = [n for n in root.iter_subtree()]
    target = draw(st.sampled_from(nodes))
    target.is_result = True
    if target.kind is PatternKind.OR:
        target.is_result = False
        root.is_result = True
    return TreePattern(root)


# -- reference implementation --------------------------------------------------


def ref_label_match(p: PatternNode, d: Node) -> bool:
    if p.kind is PatternKind.ELEMENT:
        return d.kind is NodeKind.ELEMENT and d.label == p.label
    if p.kind is PatternKind.VALUE:
        return d.kind is NodeKind.VALUE and d.label == p.label
    if p.kind is PatternKind.STAR:
        return d.kind is not NodeKind.FUNCTION
    if p.kind is PatternKind.FUNCTION:
        return d.kind is NodeKind.FUNCTION and (
            p.function_names is None or d.label in p.function_names
        )
    raise AssertionError


def ref_candidates(d: Node, edge: EdgeKind):
    if edge is EdgeKind.CHILD:
        return list(d.children)
    out = []
    stack = list(d.children)
    while stack:
        node = stack.pop()
        out.append(node)
        if node.kind is not NodeKind.FUNCTION:
            stack.extend(node.children)
    return out


def ref_embeddings(p: PatternNode, d: Node):
    """All mappings result-node -> doc node, brute force."""
    if not ref_label_match(p, d):
        return []
    partials = [frozenset({(p.uid, id(d))}) if p.is_result else frozenset()]
    for child in p.children:
        extended = []
        child_opts = []
        for cand in ref_candidates(d, child.edge):
            child_opts.extend(ref_embeddings(child, cand))
        for partial in partials:
            for opt in child_opts:
                extended.append(partial | opt)
        partials = extended
        if not partials:
            return []
    return partials


def ref_results(pattern: TreePattern, doc) -> set:
    out = set()
    for emb in ref_embeddings(pattern.root, doc.root):
        out.add(frozenset(emb))
    return out


# -- properties ------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(doc=documents(), pattern=patterns())
def test_matcher_agrees_with_reference(doc, pattern):
    got = {
        frozenset(
            (n.uid, id(node))
            for n, node in zip(pattern.result_nodes(), row.nodes)
        )
        for row in Matcher(pattern).evaluate(doc)
    }
    expected = ref_results(pattern, doc)
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(doc=documents(), pattern=patterns())
def test_descendant_results_superset_of_child(doc, pattern):
    """Relaxing every child edge to a descendant edge only adds rows."""
    strict_rows = Matcher(pattern).evaluate(doc)
    relaxed = pattern.clone()
    for node in relaxed.nodes():
        node.edge = EdgeKind.DESCENDANT
    relaxed_rows = Matcher(relaxed).evaluate(doc)
    strict_ids = {
        tuple(id(n) for n in row.nodes) for row in strict_rows
    }
    relaxed_ids = {
        tuple(id(n) for n in row.nodes) for row in relaxed_rows
    }
    assert strict_ids <= relaxed_ids


@settings(max_examples=80, deadline=None)
@given(doc=documents(), pattern=patterns())
def test_has_embedding_iff_results_nonempty(doc, pattern):
    matcher = Matcher(pattern)
    assert matcher.has_embedding(doc.root) == bool(matcher.evaluate(doc))


@settings(max_examples=80, deadline=None)
@given(doc=documents(), left=patterns(), right=patterns())
def test_containment_is_sound_on_random_documents(doc, left, right):
    """If subsumes(general, specific) then specific's results are a
    subset of general's on every document (here: sampled documents)."""
    from repro.pattern.containment import subsumes

    if not subsumes(left, right):
        return
    general_rows = {
        tuple(id(n) for n in row.nodes) for row in Matcher(left).evaluate(doc)
    }
    specific_rows = {
        tuple(id(n) for n in row.nodes) for row in Matcher(right).evaluate(doc)
    }
    # Result tuples are over different pattern nodes; compare the sets
    # of *matched document nodes* instead (single-result patterns).
    general_nodes = {ids for ids in general_rows}
    specific_nodes = {ids for ids in specific_rows}
    if len(left.result_nodes()) == len(right.result_nodes()) == 1:
        assert specific_nodes <= general_nodes
