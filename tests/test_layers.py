"""Unit tests for NFQ layering (Section 4.3)."""

from repro.lazy.influence import InfluenceAnalyzer
from repro.lazy.layers import compute_layers
from repro.lazy.relevance import build_nfqs, linear_path_queries
from repro.pattern.parse import parse_pattern
from repro.workloads.hotels import paper_query


def labels_of_layer(layer, query):
    nodes = {n.uid: n for n in query.nodes()}
    out = set()
    for rq in layer.queries:
        for uid in rq.all_target_uids:
            out.add(nodes[uid].label)
    return out


def test_empty_input_yields_no_layers():
    assert compute_layers([]) == []


def test_single_query_single_layer():
    q = parse_pattern("/a/b")
    nfqs = build_nfqs(q)
    layers = compute_layers(nfqs)
    assert len(layers) == len(nfqs)
    assert all(len(l.queries) >= 1 for l in layers)


def test_layers_are_topologically_ordered():
    query = paper_query()
    nfqs = build_nfqs(query)
    analyzer = InfluenceAnalyzer(nfqs)
    layers = compute_layers(nfqs, analyzer)
    position = {}
    for layer in layers:
        for rq in layer.queries:
            position[rq.target_uid] = layer.index
    for source in nfqs:
        for sink in nfqs:
            if source.target_uid == sink.target_uid:
                continue
            if analyzer.may_influence(source, sink):
                assert position[source.target_uid] <= position[sink.target_uid]


def test_hotel_layer_precedes_restaurant_layer():
    query = paper_query()
    layers = compute_layers(build_nfqs(query))
    hotel_layer = next(
        l.index for l in layers if "hotel" in labels_of_layer(l, query)
    )
    restaurant_layer = next(
        l.index for l in layers if "restaurant" in labels_of_layer(l, query)
    )
    assert hotel_layer < restaurant_layer


def test_mutually_influencing_queries_share_a_layer():
    q = parse_pattern("/root[a][b]")  # both conditions at position /root
    nfqs = build_nfqs(q)
    layers = compute_layers(nfqs)
    ab_layers = [
        l.index
        for l in layers
        if labels_of_layer(l, q) & {"a", "b"}
    ]
    assert len(set(ab_layers)) == 1


def test_single_member_layer_is_trivially_independent():
    q = parse_pattern("/a/b/c")
    layers = compute_layers(build_nfqs(q))
    for layer in layers:
        if len(layer.queries) == 1:
            assert layer.fully_parallel


def test_overlapping_positions_break_independence():
    q = parse_pattern("/root[a][b]")
    layers = compute_layers(build_nfqs(q))
    shared = [l for l in layers if len(l.queries) == 2]
    assert shared
    assert not shared[0].fully_parallel


def test_disjoint_positions_become_parallel_singleton_layers():
    # a/p and b/q conditions: the a/b NFQs share position /r (one
    # non-parallel layer); p and q land in singleton layers of their
    # own, trivially independent.
    q = parse_pattern("/r[a/p][b/q]")
    nfqs = build_nfqs(q)
    layers = compute_layers(nfqs)
    shapes = {frozenset(labels_of_layer(l, q)) for l in layers}
    assert frozenset({"a", "b"}) in shapes
    assert frozenset({"p"}) in shapes
    assert frozenset({"q"}) in shapes
    for layer in layers:
        labels = labels_of_layer(layer, q)
        if labels == {"a", "b"}:
            assert not layer.fully_parallel
        else:
            assert layer.fully_parallel


def test_descendant_targets_widen_positions_and_break_independence():
    # With //a and //b conditions the *targets of a and b themselves*
    # have position language r·Σ* (their calls can sit at any depth),
    # which covers p's and q's positions too: nothing is independent.
    q = parse_pattern("/r[//a/p][//b/q]")
    nfqs = build_nfqs(q)
    layers = compute_layers(nfqs)
    (pq_layer,) = [
        l for l in layers if {"p", "q"} <= labels_of_layer(l, q)
    ]
    assert all(flag is False for flag in pq_layer.independent.values())


def test_layers_work_for_lpqs_too():
    layers = compute_layers(linear_path_queries(paper_query()))
    assert layers
    assert sum(len(l.queries) for l in layers) == len(
        linear_path_queries(paper_query())
    )


def test_deterministic_ordering():
    query = paper_query()
    a = [tuple(sorted(l.target_uids)) for l in compute_layers(build_nfqs(query))]
    b = [tuple(sorted(l.target_uids)) for l in compute_layers(build_nfqs(query))]
    # uids differ between builds, so compare shapes.
    assert [len(x) for x in a] == [len(x) for x in b]
