"""The lazy-vs-naive differential harness: the equivalence oracle.

Scheduling and caching are *optimizations*: none of them may change the
full result of a query.  Following the type-projection tradition (an
optimizer is only trustworthy when an equivalence oracle checks it
against the unoptimized path), this harness generates random synthetic
workloads — documents x queries x fault plans — and asserts that

* naive materialisation,
* lazy NFQA,
* lazy NFQA under the concurrent batch scheduler,
* lazy NFQA with the call-result cache,
* lazy NFQA with incremental relevance analysis,
* lazy NFQA with the shared multi-query matching pass (alone and
  stacked on incremental analysis),
* lazy NFQA with arena-backed column matching (alone and stacked on
  the shared pass), and
* continuous queries with delta-driven answer maintenance, pinned
  against full re-evaluation across random splice sequences

all produce identical ``value_rows()``.  Fault plans are restricted to
the equivalence-*preserving* ones: no faults, transient faults healed
by RETRY, and total outages under FREEZE (every strategy freezes the
same calls, so all of them see the same data).

CI runs this module with ``--hypothesis-profile=ci`` (200 derandomized
examples per property); locally the "dev" profile keeps it fast.
"""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.catalog import FailingService, FlakyService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.services.resilience import RetryPolicy
from repro.workloads.synthetic import SyntheticWorld

# The four engine configurations under differential test.  Every entry
# must compute the same full result on every generated workload.
CONFIGS = {
    "naive": dict(strategy=Strategy.NAIVE),
    "lazy": dict(strategy=Strategy.LAZY_NFQ),
    "lazy+concurrent": dict(strategy=Strategy.LAZY_NFQ, max_concurrency=8),
    "lazy+cache": dict(strategy=Strategy.LAZY_NFQ, call_cache=True),
    "lazy+incremental": dict(strategy=Strategy.LAZY_NFQ, incremental=True),
    "lazy+shared": dict(strategy=Strategy.LAZY_NFQ, shared_matching=True),
    "lazy+shared+inc": dict(
        strategy=Strategy.LAZY_NFQ, shared_matching=True, incremental=True
    ),
    "lazy+arena+colmatch": dict(
        strategy=Strategy.LAZY_NFQ, arena=True, column_match=True
    ),
    "lazy+shared+colmatch": dict(
        strategy=Strategy.LAZY_NFQ,
        arena=True,
        shared_matching=True,
        column_match=True,
    ),
}

# Equivalence-preserving fault plans: (registry wrapper, config overrides).
FAULT_PLANS = ("none", "transient", "permanent")


def _wrapped_registry(world: SyntheticWorld, plan: str) -> ServiceRegistry:
    base = world.registry()
    if plan == "none":
        return base
    if plan == "transient":
        # Each service fails exactly once, then heals: RETRY makes every
        # strategy converge to the fault-free result.
        return ServiceRegistry(
            FailingService(name, base.resolve(name), failures=1)
            for name in base.names()
        )
    # "permanent": a total outage — every invocation faults, every
    # strategy freezes every call it tries, so all of them are left
    # querying exactly the extensional part of the document.
    return ServiceRegistry(
        FlakyService(base.resolve(name), fault_rate=1.0, seed=world.seed + i)
        for i, name in enumerate(base.names())
    )


def _plan_config(plan: str) -> dict:
    if plan == "none":
        return {}
    if plan == "transient":
        return dict(
            fault_policy=FaultPolicy.RETRY,
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.01),
        )
    return dict(fault_policy=FaultPolicy.FREEZE)


def evaluate_config(
    world: SyntheticWorld, doc_seed: int, query, plan: str, **config_kwargs
):
    """One full evaluation on a fresh bus/registry/document."""
    bus = ServiceBus(_wrapped_registry(world, plan))
    config = EngineConfig(**{**_plan_config(plan), **config_kwargs})
    engine = LazyQueryEvaluator(bus, config=config)
    return engine.evaluate(query, world.make_document(doc_seed))


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=50),
    plan=st.sampled_from(FAULT_PLANS),
)
def test_all_configurations_agree(world_seed, doc_seed, plan):
    """The oracle: all four configurations, identical value rows."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    results = {
        label: evaluate_config(world, doc_seed, query, plan, **kwargs)
        for label, kwargs in CONFIGS.items()
    }
    reference = results["naive"].value_rows()
    for label, outcome in results.items():
        assert outcome.value_rows() == reference, (
            f"{label!r} disagrees with naive under fault plan {plan!r}"
        )


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=30),
)
def test_concurrency_and_cache_compose(world_seed, doc_seed):
    """Scheduler and cache stacked (and across lazy strategies) still
    match the serial, uncached result."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    reference = evaluate_config(
        world, doc_seed, query, "none", strategy=Strategy.LAZY_NFQ
    ).value_rows()
    for kwargs in (
        dict(strategy=Strategy.LAZY_NFQ, max_concurrency=8, call_cache=True),
        dict(strategy=Strategy.LAZY_NFQ, max_concurrency=2, use_threads=False),
        dict(strategy=Strategy.LAZY_LPQ, max_concurrency=4, call_cache=True),
        dict(
            strategy=Strategy.LAZY_NFQ,
            speculative=True,
            max_concurrency=8,
            call_cache=True,
        ),
    ):
        outcome = evaluate_config(world, doc_seed, query, "none", **kwargs)
        assert outcome.value_rows() == reference, kwargs


@given(
    world_seed=st.integers(min_value=0, max_value=5_000),
    doc_seed=st.integers(min_value=0, max_value=20),
)
def test_concurrent_clock_never_exceeds_serial(world_seed, doc_seed):
    """The scheduler only ever *shrinks* the simulated parallel clock:
    makespan <= sum, per round and in total."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    outcome = evaluate_config(
        world, doc_seed, query, "none",
        strategy=Strategy.LAZY_NFQ, max_concurrency=8,
    )
    eps = 1e-9
    assert (
        outcome.metrics.parallel_time_s
        <= outcome.metrics.serial_time_s + eps
    )
    # And per round: a batch's makespan never exceeds its width times
    # the longest call, nor does the round report negative time.
    for record in outcome.rounds:
        assert 0.0 <= record.simulated_time_s <= (
            outcome.metrics.serial_time_s + eps
        )


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=50),
    plan=st.sampled_from(FAULT_PLANS),
)
def test_incremental_matches_full_reevaluation(world_seed, doc_seed, plan):
    """Incremental relevance analysis is invisible: same rows, same
    invocation sequence (services *and* call sites, in order), same
    relevant-call set — across random workloads and fault plans."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)

    def run(incremental: bool):
        bus = ServiceBus(_wrapped_registry(world, plan))
        config = EngineConfig(
            strategy=Strategy.LAZY_NFQ,
            incremental=incremental,
            **_plan_config(plan),
        )
        engine = LazyQueryEvaluator(bus, config=config)
        outcome = engine.evaluate(query, world.make_document(doc_seed))
        # Documents are rebuilt identically, so node ids line up and
        # the invocation log is comparable call site by call site.
        log = [
            (r.service_name, r.call_node_id, r.fault)
            for r in bus.log.records
        ]
        return outcome, log

    full, full_log = run(incremental=False)
    inc, inc_log = run(incremental=True)
    assert inc.value_rows() == full.value_rows()
    assert inc_log == full_log
    metrics = inc.metrics
    assert (
        metrics.relevance_cache_hits + metrics.queries_reevaluated
        == metrics.relevance_evaluations
    )
    assert full.metrics.calls_invoked == metrics.calls_invoked
    assert full.metrics.calls_frozen == metrics.calls_frozen


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=50),
    plan=st.sampled_from(FAULT_PLANS),
)
def test_shared_matching_matches_per_query(world_seed, doc_seed, plan):
    """The shared group pass is invisible: same rows, same invocation
    sequence (services, call sites *and* faults, in order), same
    frozen-call count — across random workloads and fault plans."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)

    def run(shared: bool):
        bus = ServiceBus(_wrapped_registry(world, plan))
        config = EngineConfig(
            strategy=Strategy.LAZY_NFQ,
            shared_matching=shared,
            **_plan_config(plan),
        )
        engine = LazyQueryEvaluator(bus, config=config)
        outcome = engine.evaluate(query, world.make_document(doc_seed))
        log = [
            (r.service_name, r.call_node_id, r.fault)
            for r in bus.log.records
        ]
        return outcome, log

    per_query, pq_log = run(shared=False)
    shared, sh_log = run(shared=True)
    assert shared.value_rows() == per_query.value_rows()
    assert sh_log == pq_log
    assert shared.metrics.calls_invoked == per_query.metrics.calls_invoked
    assert shared.metrics.calls_frozen == per_query.metrics.calls_frozen
    # The flag must actually engage the group path (synthetic worlds
    # never push bindings, so no overlay fallback applies).
    if per_query.metrics.relevance_evaluations:
        assert shared.metrics.group_passes > 0


def test_cache_hits_are_free_and_correct():
    """A deterministic spot check the random oracle implies: duplicate
    calls hit the cache, cost zero simulated time, same rows."""
    from repro.workloads.chains import build_chain_workload

    workload = build_chain_workload(depth=4, width=6, distinct_keys=2)

    def run(**kwargs):
        bus = ServiceBus(workload.registry)
        engine = LazyQueryEvaluator(
            bus, schema=workload.schema, config=EngineConfig(**kwargs)
        )
        return engine.evaluate(workload.query, workload.make_document()), bus

    plain, plain_bus = run(strategy=Strategy.LAZY_NFQ)
    cached, cached_bus = run(strategy=Strategy.LAZY_NFQ, call_cache=True)
    assert cached.value_rows() == plain.value_rows()
    assert cached.metrics.cache_hits > 0
    assert cached_bus.clock_s < plain_bus.clock_s
    assert cached_bus.cache is not None and cached_bus.cache.hits > 0


# -- delta-driven answer maintenance ------------------------------------------

# The orthogonal engine axes answer maintenance must stay invisible
# under: alone, stacked on incremental analysis, on the shared group
# pass, on both plus the call cache, and under the batch scheduler.
MAINTENANCE_AXES = (
    dict(),
    dict(incremental=True),
    dict(shared_matching=True),
    dict(incremental=True, shared_matching=True, call_cache=True),
    dict(max_concurrency=4, call_cache=True),
)


def _spot_path(rng: random.Random, document) -> list[int]:
    """A structural path (child indices) to a random element node.

    Paths are replayed by index on the twin document, which is built
    and mutated identically — structural addressing keeps the two
    mutation sequences byte-identical without sharing node objects.
    """
    node, path = document.root, []
    while True:
        elements = [
            (i, c) for i, c in enumerate(node.children) if c.is_element
        ]
        if not elements or rng.random() < 0.5:
            return path
        index, node = rng.choice(elements)
        path.append(index)


def _node_at(document, path: list[int]):
    node = document.root
    for index in path:
        node = node.children[index]
    return node


def _apply_mutation(world, rng_seed: str, step: int, documents) -> None:
    """One random splice, replayed identically on every document."""
    rng = random.Random(f"{rng_seed}|{step}")
    kind = rng.choice(("insert", "insert", "insert-call", "remove"))
    path = _spot_path(rng, documents[0])
    if kind == "remove" and path:
        for document in documents:
            document.remove_subtree(_node_at(document, path))
        return
    if kind == "insert-call":
        name = rng.choice(world.service_names)
        key = f"1:mut-{step}-{rng.randint(0, 9999)}"
        from repro.axml.builder import C, V

        subtree = C(name, V(key))
    else:
        subtree = world._random_tree(
            rng, depth=2, call_budget=1, salt=f"mut-{step}"
        )
    for document in documents:
        document.insert_subtree(_node_at(document, path), subtree.clone())


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=30),
    mutation_seed=st.integers(min_value=0, max_value=500),
    n_mutations=st.integers(min_value=1, max_value=4),
    axis=st.sampled_from(MAINTENANCE_AXES),
    plan=st.sampled_from(FAULT_PLANS),
)
def test_maintained_answers_match_full_reevaluation(
    world_seed, doc_seed, mutation_seed, n_mutations, axis, plan
):
    """Answer maintenance is invisible: a standing query refreshed
    through random splice sequences returns the same value rows, in the
    same invocation order (services, call sites *and* faults), as its
    twin that re-evaluates in full on every refresh — across engine
    axes and fault plans."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)

    def standing(maintain: bool):
        bus = ServiceBus(_wrapped_registry(world, plan))
        config = EngineConfig(
            strategy=Strategy.LAZY_NFQ,
            maintain_answers=maintain,
            **{**_plan_config(plan), **axis},
        )
        engine = LazyQueryEvaluator(bus, config=config)
        return (
            ContinuousQuery(engine, query, world.make_document(doc_seed)),
            bus,
        )

    maintained, m_bus = standing(maintain=True)
    oracle, o_bus = standing(maintain=False)
    assert maintained.answer_cache is not None

    def logs(bus):
        return [
            (r.service_name, r.call_node_id, r.fault)
            for r in bus.log.records
        ]

    seed_text = f"{world_seed}|{doc_seed}|{mutation_seed}"
    for step in range(n_mutations):
        _apply_mutation(
            world, seed_text, step, (maintained.document, oracle.document)
        )
        kept = maintained.refresh()
        full = oracle.refresh()
        assert kept.value_rows() == full.value_rows(), f"step {step}"
        # The cumulative logs pin invocation behaviour exactly: same
        # services, same call sites, same faults, same order.  (Per-
        # refresh metrics are deliberately not compared: a skip-engine
        # refresh returns the cached outcome, whose metrics describe
        # the evaluation that produced it.)
        assert logs(m_bus) == logs(o_bus), f"step {step}"
    maintained.close()
    oracle.close()


# ---------------------------------------------------------------------------
# Factory-driven regimes: the hostile scenarios, fuzz-sized
# ---------------------------------------------------------------------------

from repro.workloads.factory import fuzz_spec, generate  # noqa: E402

# Regimes whose hostile *shape* survives fuzz-sizing (fault-plan regimes
# are covered by the plan axis above; serving regimes live in
# test_serve_differential).
FUZZ_REGIMES = (
    "baseline",
    "deep-recursion",
    "wide-flat",
    "bindings-push",
    "cache-flood",
    "multi-root-standing",
)

LOG_PINNED_CONFIGS = (
    "lazy+incremental",
    "lazy+shared",
    "lazy+shared+inc",
    # The column plan is an access path, never an invocation change —
    # rows come out of slot space but the calls replay exactly.
    "lazy+arena+colmatch",
    "lazy+shared+colmatch",
)


def _factory_log(bus: ServiceBus):
    return [
        (r.service_name, r.call_node_id, r.fault) for r in bus.log.records
    ]


@given(
    name=st.sampled_from(FUZZ_REGIMES),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_factory_regimes_agree_with_naive(name, seed):
    """Every engine configuration, pinned to the naive oracle on every
    query of a factory regime — the hostile shapes (recursion, BINDINGS
    pushing, multi-child roots, key floods) included."""
    gen = generate(fuzz_spec(name, seed))
    for qi in range(gen.spec.n_queries):
        query = gen.query_for(qi)
        doc = gen.document_for_query(qi)
        reference = gen.oracle(query, doc).value_rows()
        base_out, base_log = gen.evaluate(
            query, doc, strategy=Strategy.LAZY_NFQ
        )
        assert base_out.value_rows() == reference, (name, qi, "lazy")
        for label, kwargs in CONFIGS.items():
            if label in ("naive", "lazy"):
                continue
            out, log = gen.evaluate(query, doc, **kwargs)
            assert out.value_rows() == reference, (name, qi, label)
            if label in LOG_PINNED_CONFIGS:
                # Invocation-invisible optimizations must also replay
                # the exact call sequence (both engines fall back
                # identically under a BINDINGS overlay).
                assert log == base_log, (name, qi, label)


@given(
    name=st.sampled_from(
        ("baseline", "deep-recursion", "multi-root-standing")
    ),
    seed=st.integers(min_value=0, max_value=2_000),
    n_mutations=st.integers(min_value=1, max_value=3),
)
def test_factory_maintenance_agrees(name, seed, n_mutations):
    """Maintained standing queries over factory mutation traces: same
    rows, same cumulative logs as the unmaintained twin — including the
    multi-child-root regime, where the AnswerCache must survive its
    full-rematch fallback."""
    gen = generate(fuzz_spec(name, seed))
    query = gen.query_for(0)

    def standing(maintain: bool):
        bus = ServiceBus(gen.registry())
        config = gen.engine_config(
            strategy=Strategy.LAZY_NFQ, maintain_answers=maintain
        )
        engine = LazyQueryEvaluator(bus, config=config)
        return ContinuousQuery(engine, query, gen.make_document(0)), bus

    kept, kept_bus = standing(True)
    full, full_bus = standing(False)
    if name == "multi-root-standing" and kept.answer_cache is not None:
        assert kept.answer_cache._scoped is False
    for step in range(n_mutations):
        gen.apply_mutation(str(step), (kept.document, full.document))
        assert (
            kept.refresh().value_rows() == full.refresh().value_rows()
        ), (name, step)
        assert _factory_log(kept_bus) == _factory_log(full_bus), (name, step)
    kept.close()
    full.close()
