"""Unit tests for label paths (repro.axml.paths)."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.paths import (
    call_position,
    common_prefix,
    format_path,
    is_prefix,
    parse_path,
    path_to,
)


@pytest.fixture
def doc():
    return build_document(
        E("root", E("a", E("b", C("f", V("param"))), C("g")))
    )


def test_path_to_includes_root_and_node(doc):
    b = [n for n in doc.iter_nodes() if n.label == "b"][0]
    assert path_to(b) == ("root", "a", "b")


def test_path_to_rejects_non_elements(doc):
    f = doc.function_nodes()[0]
    with pytest.raises(ValueError):
        path_to(f)


def test_call_position_is_parent_path(doc):
    f, g = doc.function_nodes()
    assert call_position(f) == ("root", "a", "b")
    assert call_position(g) == ("root", "a")


def test_call_position_requires_attached_function(doc):
    from repro.axml.node import call

    with pytest.raises(ValueError):
        call_position(call("loose"))
    with pytest.raises(ValueError):
        call_position(doc.root)


def test_format_path():
    assert format_path(("a", "b")) == "/a/b"
    assert format_path(()) == "/"


def test_is_prefix():
    assert is_prefix((), ("a",))
    assert is_prefix(("a",), ("a", "b"))
    assert is_prefix(("a", "b"), ("a", "b"))
    assert not is_prefix(("a", "c"), ("a", "b"))
    assert not is_prefix(("a", "b", "c"), ("a", "b"))


def test_common_prefix():
    assert common_prefix(("a", "b", "c"), ("a", "b", "d")) == ("a", "b")
    assert common_prefix(("x",), ("y",)) == ()


def test_parse_path_accepts_simple_child_paths():
    assert parse_path("/a/b/c") == ("a", "b", "c")


@pytest.mark.parametrize(
    "text", ["a/b", "/a//b", "/a/b[c]", "/a/()", ""]
)
def test_parse_path_rejects_non_linear(text):
    assert parse_path(text) is None
