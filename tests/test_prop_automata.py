"""Property tests for the automata toolkit.

Random regexes are checked against a sampler (words drawn from the
regex itself must be accepted) and against brute-force enumeration for
intersection / prefix questions over a small alphabet.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.schema import regex as rx
from repro.schema.automata import (
    from_regex,
    languages_intersect,
    some_word_is_prefix_of,
)

ALPHABET = ["a", "b", "c"]


@st.composite
def regexes(draw, depth=3):
    if depth == 0:
        return rx.Letter(draw(st.sampled_from(ALPHABET)))
    kind = draw(
        st.sampled_from(["letter", "letter", "concat", "alt", "star", "maybe"])
    )
    if kind == "letter":
        return rx.Letter(draw(st.sampled_from(ALPHABET)))
    if kind == "star":
        return rx.Star(draw(regexes(depth=depth - 1)))
    if kind == "maybe":
        return rx.Maybe(draw(regexes(depth=depth - 1)))
    parts = draw(
        st.lists(regexes(depth=depth - 1), min_size=2, max_size=3)
    )
    return rx.Concat(parts) if kind == "concat" else rx.Alt(parts)


def sample_word(regex: rx.Regex, rng: random.Random, budget: int = 4):
    """Draw one word from the language of the regex."""
    if isinstance(regex, rx.Epsilon):
        return []
    if isinstance(regex, rx.Letter):
        return [regex.name]
    if isinstance(regex, rx.Concat):
        out = []
        for part in regex.parts:
            out.extend(sample_word(part, rng, budget))
        return out
    if isinstance(regex, rx.Alt):
        return sample_word(rng.choice(regex.parts), rng, budget)
    if isinstance(regex, rx.Star):
        out = []
        for _ in range(rng.randint(0, budget)):
            out.extend(sample_word(regex.inner, rng, budget - 1))
        return out
    if isinstance(regex, rx.Plus):
        out = sample_word(regex.inner, rng, budget)
        for _ in range(rng.randint(0, budget)):
            out.extend(sample_word(regex.inner, rng, budget - 1))
        return out
    if isinstance(regex, rx.Maybe):
        if rng.random() < 0.5:
            return []
        return sample_word(regex.inner, rng, budget)
    raise AssertionError


def words_up_to(length):
    for n in range(length + 1):
        yield from itertools.product(ALPHABET, repeat=n)


@settings(max_examples=150, deadline=None)
@given(regex=regexes(), seed=st.integers(0, 1000))
def test_sampled_words_are_accepted(regex, seed):
    rng = random.Random(seed)
    nfa = from_regex(regex)
    for _ in range(5):
        assert nfa.accepts(sample_word(regex, rng))


@settings(max_examples=60, deadline=None)
@given(left=regexes(depth=2), right=regexes(depth=2))
def test_intersection_agrees_with_enumeration(left, right):
    l_nfa, r_nfa = from_regex(left), from_regex(right)
    brute = any(
        l_nfa.accepts(list(w)) and r_nfa.accepts(list(w))
        for w in words_up_to(4)
    )
    got = languages_intersect(l_nfa, r_nfa)
    # Enumeration is bounded: it can miss long witnesses, so only the
    # brute-force-positive direction is a strict check.
    if brute:
        assert got
    if not got:
        assert not brute


@settings(max_examples=60, deadline=None)
@given(left=regexes(depth=2), right=regexes(depth=2))
def test_prefix_test_agrees_with_enumeration(left, right):
    l_nfa, r_nfa = from_regex(left), from_regex(right)
    brute = False
    for w in words_up_to(4):
        if not r_nfa.accepts(list(w)):
            continue
        for k in range(len(w) + 1):
            if l_nfa.accepts(list(w[:k])):
                brute = True
                break
        if brute:
            break
    got = some_word_is_prefix_of(l_nfa, r_nfa)
    if brute:
        assert got
    if not got:
        assert not brute


@settings(max_examples=80, deadline=None)
@given(regex=regexes(depth=2), seed=st.integers(0, 1000))
def test_prefix_closure_accepts_every_prefix(regex, seed):
    rng = random.Random(seed)
    closed = from_regex(regex).prefix_closed()
    word = sample_word(regex, rng)
    for k in range(len(word) + 1):
        assert closed.accepts(word[:k])


@settings(max_examples=80, deadline=None)
@given(regex=regexes())
def test_nullability_matches_membership_of_epsilon(regex):
    assert from_regex(regex).accepts([]) == regex.nullable()
