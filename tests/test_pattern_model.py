"""Unit tests for TreePattern structure utilities."""

import pytest

from repro.pattern.nodes import (
    EdgeKind,
    PatternKind,
    PatternNode,
    pelem,
    pfunc,
    por,
    pstar,
    pvalue,
    pvar,
)
from repro.pattern.parse import parse_pattern
from repro.pattern.pattern import TreePattern


def test_validation_rejects_or_root():
    with pytest.raises(ValueError):
        TreePattern(por(pelem("a"), pelem("b")))


def test_validation_rejects_function_root():
    with pytest.raises(ValueError):
        TreePattern(pfunc(None))


def test_validation_rejects_value_with_children():
    bad = pvalue("5")
    bad.add_child(pelem("x"))
    with pytest.raises(ValueError):
        TreePattern(pelem("a", bad))


def test_validation_rejects_function_with_children():
    bad = pfunc(None)
    bad.add_child(pelem("x"))
    with pytest.raises(ValueError):
        TreePattern(pelem("a", bad))


def test_value_rooted_pattern_is_legal():
    # sub_q_v for a leaf value node (Sections 5/7)
    TreePattern(pvalue("5"))


def test_variables_in_first_occurrence_order():
    q = parse_pattern("/a[x=$B]/c[y=$A][z=$B]")
    assert q.variables() == ["B", "A"]


def test_linear_steps_to_excludes_node_by_default(fig1_query):
    restaurant = [n for n in fig1_query.nodes() if n.label == "restaurant"][0]
    steps = fig1_query.linear_steps_to(restaurant)
    assert [s.label for s in steps] == ["hotels", "hotel", "nearby"]
    steps_incl = fig1_query.linear_steps_to(restaurant, include_node=True)
    assert [s.label for s in steps_incl][-1] == "restaurant"
    assert steps_incl[-1].edge is EdgeKind.DESCENDANT


def test_linear_steps_star_and_variable_have_no_label():
    q = parse_pattern("/a/*/b[c=$X]")
    x = [n for n in q.nodes() if n.is_variable][0]
    steps = q.linear_steps_to(x, include_node=True)
    assert [s.label for s in steps] == ["a", None, "b", "c", None]


def test_spine_nodes_runs_root_to_node(fig1_query):
    y = [n for n in fig1_query.nodes() if n.is_variable and n.label == "Y"][0]
    labels = [n.label for n in fig1_query.spine_nodes(y)]
    assert labels == ["hotels", "hotel", "nearby", "restaurant", "address", "Y"]


def test_subtree_at_rebases_edge(fig1_query):
    restaurant = [n for n in fig1_query.nodes() if n.label == "restaurant"][0]
    sub = fig1_query.subtree_at(restaurant)
    assert sub.root.label == "restaurant"
    assert sub.root.edge is EdgeKind.CHILD
    assert sub.root.parent is None
    # original untouched
    assert restaurant.edge is EdgeKind.DESCENDANT


def test_clone_preserves_origin_chain(fig1_query):
    clone = fig1_query.clone()
    reclone = clone.clone()
    for node in fig1_query.nodes():
        assert clone.find_by_origin(node.uid).label == node.label
        assert reclone.find_by_origin(node.uid).label == node.label


def test_or_free_expansions_multiply():
    a = pelem("a", por(pelem("b"), pelem("c")), por(pelem("d"), pfunc(None)))
    q = TreePattern(a)
    expansions = q.or_free_expansions()
    assert len(expansions) == 4
    rendered = {e.to_string() for e in expansions}
    assert "/a[b][d]" in rendered
    assert len(rendered) == 4


def test_or_expansion_preserves_edges():
    node = por(pelem("b"), pelem("c"), edge=EdgeKind.DESCENDANT)
    q = TreePattern(pelem("a", node))
    for expansion in q.or_free_expansions():
        assert expansion.root.children[0].edge is EdgeKind.DESCENDANT


def test_to_string_notation(fig1_query):
    text = fig1_query.to_string()
    assert text.startswith("/hotels")
    assert '[name["Best Western"]]' in text
    assert "//restaurant" in text
    assert "$X!" in text  # result marker on variables
