"""Unit tests for Document: identity, the rewrite step, observers."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.document import Document
from repro.axml.node import call, element, value


def make_doc():
    return build_document(
        E("root", E("a", C("f", V("p"))), C("g")),
        name="t",
    )


def test_root_must_be_element():
    with pytest.raises(ValueError):
        Document(value("x"))
    with pytest.raises(ValueError):
        Document(call("f"))


def test_root_must_be_detached():
    parent = element("p", element("r"))
    with pytest.raises(ValueError):
        Document(parent.children[0])


def test_node_ids_are_assigned_in_document_order():
    doc = make_doc()
    ids = [n.node_id for n in doc.iter_nodes()]
    assert ids == sorted(ids)
    assert ids[0] == 0


def test_node_lookup_by_id():
    doc = make_doc()
    for node in doc.iter_nodes():
        assert doc.node(node.node_id) is node


def test_contains_tracks_membership():
    doc = make_doc()
    g = doc.function_nodes()[1]
    assert doc.contains(g)
    doc.replace_call(g, [])
    assert not doc.contains(g)


def test_function_nodes_in_document_order():
    doc = make_doc()
    assert [n.label for n in doc.function_nodes()] == ["f", "g"]


def test_stats_counts_kinds_and_depth():
    doc = make_doc()
    stats = doc.stats()
    assert stats.total_nodes == 5
    assert stats.element_nodes == 2
    assert stats.function_nodes == 2
    assert stats.value_nodes == 1
    assert stats.max_depth == 3
    assert 0 < stats.intensional_fraction < 1


def test_replace_call_splices_forest_in_position():
    doc = build_document(E("root", V("before"), C("f"), V("after")))
    f = doc.function_nodes()[0]
    doc.replace_call(f, [element("x"), element("y")])
    labels = [n.label for n in doc.root.children]
    assert labels == ["before", "x", "y", "after"]


def test_replace_call_with_empty_forest_just_removes():
    doc = make_doc()
    f = doc.function_nodes()[0]
    doc.replace_call(f, [])
    assert doc.function_nodes()[0].label == "g"
    assert doc.stats().total_nodes == 3


def test_replace_call_assigns_fresh_ids_and_provenance():
    doc = make_doc()
    f = doc.function_nodes()[0]
    f_id = f.node_id
    new_calls = doc.replace_call(f, [element("r", call("h"))])
    assert new_calls[0].label == "h"
    r = doc.root.children[0].children[0]
    assert r.label == "r"
    assert r.node_id is not None and r.node_id > 4
    assert r.produced_by == f_id


def test_transitively_produced_by_follows_chains():
    doc = build_document(E("root", C("f")))
    f = doc.function_nodes()[0]
    f_id = f.node_id
    (g,) = doc.replace_call(f, [element("mid", call("g"))])
    g_id = g.node_id
    doc.replace_call(g, [element("leaf")])
    leaf = [n for n in doc.iter_nodes() if n.label == "leaf"][0]
    assert doc.transitively_produced_by(leaf, g_id)
    assert doc.transitively_produced_by(leaf, f_id)
    assert not doc.transitively_produced_by(doc.root, f_id)


def test_replace_call_rejects_foreign_and_data_nodes():
    doc = make_doc()
    with pytest.raises(ValueError):
        doc.replace_call(call("loose"), [])
    with pytest.raises(ValueError):
        doc.replace_call(doc.root.children[0], [])


def test_replace_call_rejects_attached_forest():
    doc = make_doc()
    f = doc.function_nodes()[0]
    holder = element("h", element("x"))
    with pytest.raises(ValueError):
        doc.replace_call(f, [holder.children[0]])


class _Recorder:
    def __init__(self):
        self.removed = []
        self.added = []

    def call_removed(self, document, node):
        self.removed.append(node.label)

    def calls_added(self, document, nodes):
        self.added.extend(n.label for n in nodes)


def test_observers_see_removal_and_additions():
    doc = make_doc()
    rec = _Recorder()
    doc.add_observer(rec)
    f = doc.function_nodes()[0]
    doc.replace_call(f, [element("r", call("h"), call("k"))])
    assert rec.removed == ["f"]
    assert rec.added == ["h", "k"]
    doc.remove_observer(rec)
    doc.replace_call(doc.function_nodes()[0], [])
    assert rec.removed == ["f"]  # no longer notified


def test_copy_is_independent():
    doc = make_doc()
    twin = doc.copy()
    twin.replace_call(twin.function_nodes()[0], [])
    assert len(doc.function_nodes()) == 2
    assert len(twin.function_nodes()) == 1
