"""Extended-query matching: OR nodes, and OR semantics as union."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.pattern.match import Matcher, snapshot_result
from repro.pattern.nodes import (
    EdgeKind,
    PatternKind,
    PatternNode,
    pelem,
    pfunc,
    por,
    pvalue,
    pvar,
)
from repro.pattern.pattern import TreePattern


@pytest.fixture
def doc():
    return build_document(
        E(
            "root",
            E("item", E("tag", V("red")), E("price", V("5"))),
            E("item", C("getTag"), E("price", V("7"))),
            E("item", E("price", V("9"))),
        )
    )


def or_query(result_on="price"):
    """/root/item[tag OR ()]/price — condition satisfiable by data or call."""
    tag_or_call = por(pelem("tag"), pfunc(None))
    price = pelem(result_on, result=True)
    return TreePattern(pelem("root", pelem("item", tag_or_call, price)))


def test_or_matches_either_branch(doc):
    got = snapshot_result(or_query(), doc)
    # items 1 (has tag) and 2 (has a call) qualify; item 3 does not.
    assert len(got) == 2


def test_or_semantics_equal_union_of_expansions(doc):
    q = or_query()
    direct = {
        tuple(n.node_id for n in row.nodes) for row in Matcher(q).evaluate(doc)
    }
    union = set()
    for expansion in q.or_free_expansions():
        for row in Matcher(expansion).evaluate(doc):
            union.add(tuple(n.node_id for n in row.nodes))
    assert direct == union


def test_or_with_nested_conditions():
    doc = build_document(
        E(
            "root",
            E("a", E("b", E("c", V("1")))),
            E("a", C("f")),
            E("a", E("b")),
        )
    )
    inner = por(pelem("b", por(pelem("c"), pfunc(None))), pfunc(None))
    q = TreePattern(pelem("root", pelem("a", inner, result=True)))
    got = snapshot_result(q, doc)
    # a#1: b[c] matches; a#2: the call matches the outer (); a#3: b exists
    # but c does not and there is no call below b -> no match.
    assert len(got) == 2


def test_or_alternatives_use_parent_edge():
    doc = build_document(E("root", E("wrap", E("deep", E("tag")))))
    q = TreePattern(
        pelem(
            "root",
            por(pelem("tag"), pfunc(None), edge=EdgeKind.DESCENDANT),
            result=True,
        )
    )
    assert len(snapshot_result(q, doc)) == 1


def test_variable_inside_or_branch():
    doc = build_document(E("root", E("a", E("x", V("7"))), E("a", C("f"))))
    var = pvar("V", result=True)
    q = TreePattern(
        pelem("root", pelem("a", por(pelem("x", var), pfunc(None)), result=False))
    )
    rows = snapshot_result(q, doc)
    values = {row.binding("V") for row in rows}
    # Only the data branch binds V; the call branch yields no complete row.
    assert values == {"7"}


def test_function_alternative_respects_name_sets(doc):
    tag_or_g = por(pelem("tag"), pfunc(["gOnly"]))
    q = TreePattern(pelem("root", pelem("item", tag_or_g, pelem("price", result=True))))
    # item 2's call is 'getTag', not 'gOnly' -> only item 1 matches.
    assert len(snapshot_result(q, doc)) == 1
