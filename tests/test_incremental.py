"""Incremental relevance analysis: footprints, cache, index-assisted
matching, and engine-level equivalence."""

from __future__ import annotations

from repro.axml import LabelIndex, build_document
from repro.axml.builder import C, E, V
from repro.lazy import (
    EngineConfig,
    FaultPolicy,
    LabelFootprint,
    LazyQueryEvaluator,
    RelevanceCache,
    Strategy,
    build_nfqs,
)
from repro.pattern.match import MatchCounter, Matcher, MatchOptions
from repro.pattern.nodes import EdgeKind, pelem, pfunc, por, pstar, pvar
from repro.pattern.parse import parse_pattern
from repro.pattern.pattern import TreePattern
from repro.services.catalog import FailingService, TableService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.services.resilience import RetryPolicy
from repro.workloads.chains import build_chain_workload
from repro.workloads.hotels import (
    HotelsWorkloadParams,
    build_hotels_workload,
    paper_query,
)


# ---------------------------------------------------------------------------
# LabelFootprint
# ---------------------------------------------------------------------------


def test_footprint_collects_labels_and_parent_constraints():
    pattern = parse_pattern('/hotels/hotel[rating="5"]/name')
    fp = LabelFootprint.from_pattern(pattern)
    assert fp.data_labels == {"hotel", "rating", "5", "name"}
    assert not fp.matches_any_data
    assert not fp.matches_any_function

    doc = build_document(
        E("hotels", E("hotel", E("rating", V("5")), E("name", V("Ritz"))))
    )
    nodes = {n.label: n for n in doc.iter_nodes()}
    assert fp.touches_node(nodes["rating"], nodes["rating"].parent)
    assert fp.touches_node(nodes["5"], nodes["5"].parent)
    assert not fp.touches_node(nodes["Ritz"], nodes["Ritz"].parent)
    # Same label under the wrong parent: the child-edge constraint
    # rejects it.
    stray = build_document(E("r", E("other", E("rating", V("1")))))
    stray_rating = next(
        n for n in stray.iter_nodes() if n.label == "rating"
    )
    assert not fp.touches_node(stray_rating, stray_rating.parent)


def test_footprint_descendant_edges_drop_the_parent_constraint():
    pattern = parse_pattern("/hotels//rating")
    fp = LabelFootprint.from_pattern(pattern)
    doc = build_document(E("r", E("anything", E("rating", V("1")))))
    rating = next(n for n in doc.iter_nodes() if n.label == "rating")
    assert fp.touches_node(rating, rating.parent)


def test_footprint_wildcards_and_functions():
    root = pelem(
        "chain",
        pelem(
            "branch",
            por(
                pelem("l1", pvar("LEAF")),
                pfunc(["level1"]),
            ),
        ),
    )
    fp = LabelFootprint.from_pattern(TreePattern(root))
    assert fp.data_labels == {"branch", "l1"}
    assert fp.matches_any_data  # the $LEAF variable
    assert fp.function_names == {"level1"}
    assert not fp.matches_any_function

    starred = TreePattern(pelem("a", pfunc(None, edge=EdgeKind.DESCENDANT)))
    star_fp = LabelFootprint.from_pattern(starred)
    assert star_fp.matches_any_function
    doc = build_document(E("a", E("b", C("anything", V("k")))))
    call = doc.function_nodes()[0]
    assert star_fp.touches_node(call, call.parent)


def test_footprint_or_alternatives_inherit_edge_and_parent():
    # (l1 | level1()) under branch by a child edge: both alternatives
    # carry the "branch" parent constraint.
    root = pelem("chain", pelem("branch", por(pelem("l1"), pfunc(["level1"]))))
    fp = LabelFootprint.from_pattern(TreePattern(root))
    doc = build_document(
        E("chain", E("branch", E("l1")), E("other", E("l1")))
    )
    below_branch, below_other = [
        n for n in doc.iter_nodes() if n.label == "l1"
    ]
    assert fp.touches_node(below_branch, below_branch.parent)
    assert not fp.touches_node(below_other, below_other.parent)


def test_footprint_screens_whole_deltas():
    pattern = parse_pattern("/chain/branch/l1")
    fp = LabelFootprint.from_pattern(pattern)
    doc = build_document(
        E("chain", E("branch", C("level1", V("0"))), E("noise", E("x")))
    )
    index = LabelIndex(doc)  # convenient splice recorder
    deltas = []
    index.splice = lambda document, delta: deltas.append(delta)  # type: ignore

    call = doc.function_nodes()[0]
    doc.replace_call(call, [E("l1", V("leaf"))])
    assert fp.touches(deltas[-1])  # adds an l1 under branch

    noise = next(n for n in doc.iter_nodes() if n.label == "noise")
    doc.insert_subtree(noise, E("x", V("y")))
    assert not fp.touches(deltas[-1])  # disjoint labels: provably clean


# ---------------------------------------------------------------------------
# RelevanceCache
# ---------------------------------------------------------------------------


def _chain_setup():
    doc = build_document(
        E(
            "chain",
            E("branch", C("level1", V("0"))),
            E("side", C("other", V("1"))),
        )
    )
    query = parse_pattern("/chain/branch/l1/$LEAF")
    (rquery,) = [
        q for q in build_nfqs(query) if q.target.label == "LEAF"
    ]
    return doc, rquery


def test_cache_hits_until_a_touching_splice():
    doc, rquery = _chain_setup()
    cache = RelevanceCache(doc)
    evaluations = []

    def evaluate(rq):
        evaluations.append(rq)
        return []

    assert cache.retrieve(rquery, evaluate) == []
    assert cache.retrieve(rquery, evaluate) == []
    assert (cache.hits, cache.reevaluations) == (1, 1)
    assert len(evaluations) == 1

    # A splice outside the footprint leaves the entry valid...
    side_call = next(
        c for c in doc.function_nodes() if c.label == "other"
    )
    doc.replace_call(side_call, [V("done")])
    assert cache.retrieve(rquery, evaluate) == []
    assert cache.hits == 2 and cache.invalidations == 0

    # ...a splice inside it drops the entry.
    branch_call = next(
        c for c in doc.function_nodes() if c.label == "level1"
    )
    doc.replace_call(branch_call, [E("l1", V("leaf"))])
    assert cache.retrieve(rquery, evaluate) == []
    assert cache.invalidations == 1
    assert cache.reevaluations == 2
    cache.detach()


def test_cache_misses_when_the_pattern_object_changes():
    """Query rebuilds (refinement, layer simplification) produce fresh
    pattern objects — the cache must not serve the stale entry."""
    doc, rquery = _chain_setup()
    cache = RelevanceCache(doc)
    cache.retrieve(rquery, lambda rq: [])
    rebuilt_doc, rebuilt = _chain_setup()
    assert rebuilt.target_uid != rquery.target_uid or True
    # Simulate a rebuild for the *same* target: same uid, new pattern.
    rebuilt.target_uid = rquery.target_uid
    calls = []
    cache.retrieve(rebuilt, lambda rq: calls.append(rq) or [])
    assert calls, "fresh pattern object must force a re-evaluation"
    cache.detach()


def test_pattern_mismatch_evicts_the_stale_entry():
    """Regression: a pattern-identity miss used to leave the dead entry
    in place, so the merged footprint (and per-splice screening) kept
    consulting a footprint no live entry owned."""
    doc, rquery = _chain_setup()
    cache = RelevanceCache(doc)
    cache.retrieve(rquery, lambda rq: [])
    assert len(cache._entries) == 1

    # Rebuild the family with a *disjoint* pattern for the same target:
    # the lookup must evict the old entry, not just miss.
    rebuilt = parse_pattern("/zz/yy/$Q")
    (fresh,) = [
        q for q in build_nfqs(rebuilt) if q.target.label == "Q"
    ]
    fresh.target_uid = rquery.target_uid
    assert cache.lookup(fresh) is None
    assert not cache._entries, "stale entry must be evicted on mismatch"

    cache.store(fresh, [])
    # The merged footprint was rebuilt from the live entries only: a
    # splice touching only the *old* footprint is now screened out in
    # one group check instead of dirtying anything.
    branch_call = next(
        c for c in doc.function_nodes() if c.label == "level1"
    )
    screens_before = cache.group_screens
    doc.replace_call(branch_call, [E("l1", V("leaf"))])
    assert cache.group_screens == screens_before + 1
    assert cache.invalidations == 0
    assert cache.lookup(fresh) is not None
    cache.detach()


# ---------------------------------------------------------------------------
# Index-assisted matching == exhaustive walk
# ---------------------------------------------------------------------------


def _hotels_doc():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=12))
    return wl.make_document()


def _match_rows(pattern, doc, index, use_index):
    counter = MatchCounter()
    matcher = Matcher(
        pattern,
        options=MatchOptions(use_label_index=use_index),
        counter=counter,
        index=index,
    )
    rows = matcher.evaluate(doc)
    return {
        tuple(id(n) for n in row.nodes) for row in rows
    }, counter


def test_index_and_walk_agree_on_hotels_patterns():
    doc = _hotels_doc()
    index = LabelIndex(doc)
    patterns = [
        paper_query(),
        parse_pattern("/hotels//rating"),
        parse_pattern('/hotels/hotel[rating="5"]//name'),
        parse_pattern("/hotels//restaurant[name=$X]"),
        TreePattern(
            pelem("hotels", pfunc(None, edge=EdgeKind.DESCENDANT, result=True))
        ),
        TreePattern(
            pelem(
                "hotels",
                por(
                    pelem("restaurant", result=False),
                    pfunc(["getRating"]),
                    edge=EdgeKind.DESCENDANT,
                ),
                pstar(edge=EdgeKind.DESCENDANT, result=True),
            )
        ),
    ]
    for pattern in patterns:
        with_index, ic = _match_rows(pattern, doc, index, use_index=True)
        without, wc = _match_rows(pattern, doc, index, use_index=False)
        assert with_index == without, pattern.to_string()
        assert wc.index_candidates == 0
    index.detach()


def test_index_agreement_survives_splices():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=8))
    doc = wl.make_document()
    bus = wl.make_bus()
    index = LabelIndex(doc)
    pattern = parse_pattern('/hotels//restaurant[rating="5"]/name')
    for _ in range(4):
        calls = [c for c in doc.function_nodes()]
        if not calls:
            break
        from repro.services.registry import ServiceCall

        outcome = bus.invoke(
            ServiceCall(
                service=calls[0].label,
                parameters=calls[0].children,
                call_node_id=calls[0].node_id,
            )
        )
        assert outcome.reply is not None
        doc.replace_call(calls[0], outcome.reply.forest)
        with_index, _ = _match_rows(pattern, doc, index, use_index=True)
        without, _ = _match_rows(pattern, doc, index, use_index=False)
        assert with_index == without
    index.detach()


def test_matcher_falls_back_on_detached_forests():
    """evaluate_forest runs over nodes outside the indexed document —
    the index must not answer for them."""
    doc = build_document(E("r", E("a", E("b"))))
    index = LabelIndex(doc)
    pattern = parse_pattern("/a//b")
    forest = [E("a", E("c", E("b")))]
    matcher = Matcher(pattern, index=index)
    rows = matcher.evaluate_forest(forest)
    assert len(rows.rows) == 1
    assert matcher.counter.index_candidates == 0
    index.detach()


def test_child_fast_path_counts_candidates():
    """The CHILD enumeration counts visited candidates too, so the
    metric is comparable across edge kinds."""
    doc = build_document(E("r", E("a", V("1")), E("a", V("2")), E("b")))
    matcher = Matcher(parse_pattern("/r/a/$X"))
    matcher.evaluate(doc)
    assert matcher.counter.candidates_visited > 0


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


def _run_engine(workload, query, **config_kwargs):
    bus = workload.make_bus()
    engine = LazyQueryEvaluator(
        bus,
        schema=workload.schema,
        config=EngineConfig(**config_kwargs),
    )
    outcome = engine.evaluate(query, workload.make_document())
    log = [(r.service_name, r.call_node_id) for r in bus.log.records]
    return outcome, log


def test_engine_incremental_equals_full_on_hotels():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=16))
    full, full_log = _run_engine(
        wl, paper_query(), strategy=Strategy.LAZY_NFQ
    )
    inc, inc_log = _run_engine(
        wl, paper_query(), strategy=Strategy.LAZY_NFQ, incremental=True
    )
    assert inc.value_rows() == full.value_rows()
    assert inc_log == full_log
    m = inc.metrics
    assert m.queries_reevaluated > 0
    assert (
        m.relevance_cache_hits + m.queries_reevaluated
        == m.relevance_evaluations
    )
    assert m.index_candidates > 0
    assert full.metrics.relevance_cache_hits == 0
    assert full.metrics.queries_reevaluated == 0


def test_engine_incremental_caches_under_plain_nfqa():
    """Un-layered NFQA re-evaluates every query each round — the regime
    where footprint screening visibly pays."""
    wl = build_chain_workload(depth=5, width=4)
    full, full_log = _run_engine(
        wl, wl.query, strategy=Strategy.LAZY_NFQ,
        use_layers=False, parallel=False,
    )
    inc, inc_log = _run_engine(
        wl, wl.query, strategy=Strategy.LAZY_NFQ,
        use_layers=False, parallel=False, incremental=True,
    )
    assert inc.value_rows() == full.value_rows()
    assert inc_log == full_log
    assert inc.metrics.relevance_cache_hits > 0
    assert (
        inc.metrics.queries_reevaluated
        < full.metrics.relevance_evaluations
    )


def test_engine_incremental_with_frozen_calls():
    """FREEZE mutates activation without a document event; the engine
    filters at read time, so results still match the full engine."""
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=10))
    base = wl.registry
    flaky = ServiceRegistry(
        FailingService(name, base.resolve(name), failures=10_000)
        if name == "getRating"
        else base.resolve(name)
        for name in base.names()
    )

    def run(incremental):
        bus = ServiceBus(flaky)
        engine = LazyQueryEvaluator(
            bus,
            schema=wl.schema,
            config=EngineConfig(
                strategy=Strategy.LAZY_NFQ,
                fault_policy=FaultPolicy.FREEZE,
                incremental=incremental,
            ),
        )
        outcome = engine.evaluate(paper_query(), wl.make_document())
        return outcome, [
            (r.service_name, r.call_node_id, r.fault)
            for r in bus.log.records
        ]

    full, full_log = run(False)
    inc, inc_log = run(True)
    assert full.metrics.calls_frozen > 0
    assert inc.metrics.calls_frozen == full.metrics.calls_frozen
    assert inc.value_rows() == full.value_rows()
    assert inc_log == full_log


def test_engine_incremental_with_fguide_composes():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=12))
    full, full_log = _run_engine(
        wl, paper_query(), strategy=Strategy.LAZY_NFQ, use_fguide=True
    )
    inc, inc_log = _run_engine(
        wl, paper_query(),
        strategy=Strategy.LAZY_NFQ, use_fguide=True, incremental=True,
    )
    assert inc.value_rows() == full.value_rows()
    assert inc_log == full_log


def test_engine_match_candidates_metric_counts_child_steps():
    """Regression for the CHILD fast path: a child-only query must
    report visited candidates in the engine metrics."""
    registry = ServiceRegistry(
        [TableService("get", {}, default=[V("leaf")])]
    )
    doc_query = parse_pattern("/r/a/$X")

    def workload_doc():
        return build_document(
            E("r", E("a", C("get", V("k"))), E("a", V("x")))
        )

    engine = LazyQueryEvaluator(
        ServiceBus(registry), config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    outcome = engine.evaluate(doc_query, workload_doc())
    assert outcome.metrics.match_candidates_visited > 0


def test_incremental_trace_tags_cache_activity():
    from repro.obs.trace import InMemorySink, RELEVANCE_CHECK

    wl = build_chain_workload(depth=4, width=3)
    sink = InMemorySink()
    bus = wl.make_bus()
    engine = LazyQueryEvaluator(
        bus,
        schema=wl.schema,
        config=EngineConfig(
            strategy=Strategy.LAZY_NFQ,
            use_layers=False,
            parallel=False,
            incremental=True,
            trace=sink,
        ),
    )
    engine.evaluate(wl.query, wl.make_document())
    checks = [s for s in sink.spans if s.name == RELEVANCE_CHECK]
    assert checks
    assert all("cache_hits" in s.tags and "reevaluated" in s.tags
               for s in checks)
    assert sum(s.tags["cache_hits"] for s in checks) > 0
