"""Tests for the static termination analysis (Section 2's condition)."""

from repro.schema.schema import parse_schema
from repro.schema.termination import (
    analyze_termination,
    call_graph,
    guaranteed_terminating,
)
from repro.workloads.chains import build_chain_workload
from repro.workloads.hotels import figure_1_schema


def test_hotels_schema_terminates():
    report = analyze_termination(figure_1_schema())
    assert report.terminating
    # getHotels -> getNearbyRestos -> getRating is the longest chain.
    assert report.max_chain_length == 3
    assert "acyclic" in report.explain()


def test_call_graph_edges_follow_outputs():
    graph = call_graph(figure_1_schema())
    # getHotels returns hotels whose ratings/nearby embed further calls.
    assert graph["getHotels"] == frozenset(
        {"getRating", "getNearbyRestos", "getNearbyMuseums"}
    )
    assert graph["getRating"] == frozenset()
    # getNearbyRestos returns restaurants whose rating may be a call.
    assert graph["getNearbyRestos"] == frozenset({"getRating"})


def test_direct_self_recursion_detected():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: wrapper]
        elements:
          wrapper = f?
        """
    )
    report = analyze_termination(schema)
    assert not report.terminating
    assert report.cyclic_functions == frozenset({"f"})
    assert "cycles" in report.explain()


def test_mutual_recursion_detected():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: a]
          g = [in: data, out: b]
        elements:
          a = g?
          b = f?
        """
    )
    report = analyze_termination(schema)
    assert not report.terminating
    assert report.cyclic_functions == frozenset({"f", "g"})


def test_any_output_is_conservatively_cyclic():
    schema = parse_schema(
        """
        functions:
          wild = [in: data, out: any]
          tame = [in: data, out: data]
        elements:
          a = data
        """
    )
    report = analyze_termination(schema)
    # wild may emit wild again: not provably terminating.
    assert not report.terminating
    assert "wild" in report.cyclic_functions


def test_chain_schema_height_matches_depth():
    wl = build_chain_workload(depth=5, width=1)
    report = analyze_termination(wl.schema)
    assert report.terminating
    assert report.max_chain_length == 5


def test_empty_schema_trivially_terminates():
    assert guaranteed_terminating(parse_schema("elements:\n a = data"))


def test_nested_function_edges_are_not_transitive():
    """f -> g means g appears in f's output; g's own emissions are g's
    edges, not f's (the chain is still found via the graph)."""
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: a]
          g = [in: data, out: b]
          h = [in: data, out: data]
        elements:
          a = g?
          b = h?
        """
    )
    graph = call_graph(schema)
    assert graph["f"] == frozenset({"g"})
    assert graph["g"] == frozenset({"h"})
    assert analyze_termination(schema).max_chain_length == 3
