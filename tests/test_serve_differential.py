"""Differential harness for the serving layer.

The :class:`~repro.serve.QueryServer` exists to make many standing
queries cheap — shared cross-tenant relevance passes, maintained-answer
serves, admission control — but none of that machinery may be
*observable* in the answers.  The oracle here is the obvious
unoptimized deployment: N independent
:class:`~repro.lazy.continuous.ContinuousQuery` loops over one shared
engine, refreshed in registration order.  A server hosting the same N
subscriptions over a twin document, driven by :meth:`run_round`, must
produce — per subscriber, per round —

* identical value rows, and
* an identical cumulative invocation log (service, call site, fault,
  in order): the batching may only *avoid* engine runs that would have
  invoked nothing, never change or reorder the ones that invoke.

Workloads are random synthetic worlds mutated by random splice
sequences, replayed structurally on both twins (the same machinery as
``test_differential``).
"""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.axml.builder import C, V
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.serve import QueryServer
from repro.services.registry import ServiceBus
from repro.workloads.synthetic import SyntheticWorld

# Engine axes under test: the serving preset (fast path armed), the
# same strategy without maintenance (every refresh runs the engine),
# and the LPQ strategy (a different relevance-family shape).
AXES = {
    "serving": lambda: EngineConfig.serving(strategy=Strategy.LAZY_NFQ),
    "no-maintenance": lambda: EngineConfig(strategy=Strategy.LAZY_NFQ),
    "serving-lpq": lambda: EngineConfig.serving(strategy=Strategy.LAZY_LPQ),
}


def _spot_path(rng: random.Random, document) -> list[int]:
    """A structural (child-index) path to a random element node."""
    node, path = document.root, []
    while True:
        elements = [
            (i, c) for i, c in enumerate(node.children) if c.is_element
        ]
        if not elements or rng.random() < 0.5:
            return path
        index, node = rng.choice(elements)
        path.append(index)


def _node_at(document, path: list[int]):
    node = document.root
    for index in path:
        node = node.children[index]
    return node


def _apply_mutation(world, rng_seed: str, step: int, documents) -> None:
    """One random splice, replayed structurally on every document."""
    rng = random.Random(f"{rng_seed}|{step}")
    kind = rng.choice(("insert", "insert", "insert-call", "remove"))
    path = _spot_path(rng, documents[0])
    if kind == "remove" and path:
        for document in documents:
            document.remove_subtree(_node_at(document, path))
        return
    if kind == "insert-call":
        name = rng.choice(world.service_names)
        key = f"1:mut-{step}-{rng.randint(0, 9999)}"
        subtree = C(name, V(key))
    else:
        subtree = world._random_tree(
            rng, depth=2, call_budget=1, salt=f"mut-{step}"
        )
    for document in documents:
        document.insert_subtree(_node_at(document, path), subtree.clone())


def _log(bus: ServiceBus):
    return [
        (r.service_name, r.call_node_id, r.fault) for r in bus.log.records
    ]


@given(
    world_seed=st.integers(min_value=0, max_value=2_000),
    doc_seed=st.integers(min_value=0, max_value=20),
    mutation_seed=st.integers(min_value=0, max_value=300),
    n_subs=st.integers(min_value=2, max_value=3),
    n_rounds=st.integers(min_value=1, max_value=3),
    axis=st.sampled_from(sorted(AXES)),
)
def test_server_rounds_match_independent_refresh_loops(
    world_seed, doc_seed, mutation_seed, n_subs, n_rounds, axis
):
    """One QueryServer round == N independent refreshes, exactly."""
    world = SyntheticWorld(seed=world_seed)
    probe = world.make_document(doc_seed)
    queries = [
        world.sample_query(probe, doc_seed + i) for i in range(n_subs)
    ]

    # The oracle: independent standing queries on one shared engine,
    # refreshed in registration order — the deployment the server
    # replaces.
    oracle_bus = ServiceBus(world.registry())
    oracle_engine = LazyQueryEvaluator(oracle_bus, config=AXES[axis]())
    oracle_doc = world.make_document(doc_seed)
    loops = [
        ContinuousQuery(oracle_engine, query, oracle_doc)
        for query in queries
    ]

    # The system under test: the same subscriptions, same order, over a
    # twin document on a twin bus.
    server_bus = ServiceBus(world.registry())
    server = QueryServer(server_bus, config=AXES[axis]())
    server_doc = world.make_document(doc_seed)
    subs = [
        server.subscribe(query, server_doc, name=f"sub-{i}")
        for i, query in enumerate(queries)
    ]

    # Eager construction must already agree call for call.
    assert _log(oracle_bus) == _log(server_bus)

    seed_text = f"{world_seed}|{doc_seed}|{mutation_seed}"
    for rnd in range(n_rounds):
        _apply_mutation(
            world, seed_text, rnd, (oracle_doc, server_doc)
        )
        expected = [set(loop.refresh().value_rows()) for loop in loops]
        server.run_round()
        assert [set(sub.rows) for sub in subs] == expected, (axis, rnd)
        assert _log(oracle_bus) == _log(server_bus), (axis, rnd)

    for loop in loops:
        loop.close()
    server.close()


@given(
    world_seed=st.integers(min_value=0, max_value=2_000),
    doc_seed=st.integers(min_value=0, max_value=20),
    mutation_seed=st.integers(min_value=0, max_value=300),
    n_rounds=st.integers(min_value=1, max_value=3),
)
def test_on_demand_refresh_matches_loops(
    world_seed, doc_seed, mutation_seed, n_rounds
):
    """Subscription.refresh() (no round) is just as invisible."""
    world = SyntheticWorld(seed=world_seed)
    probe = world.make_document(doc_seed)
    query = world.sample_query(probe, doc_seed)

    oracle_bus = ServiceBus(world.registry())
    oracle_engine = LazyQueryEvaluator(
        oracle_bus, config=EngineConfig.serving()
    )
    oracle_doc = world.make_document(doc_seed)
    loop = ContinuousQuery(oracle_engine, query, oracle_doc)

    server_bus = ServiceBus(world.registry())
    server = QueryServer(server_bus, config=EngineConfig.serving())
    server_doc = world.make_document(doc_seed)
    sub = server.subscribe(query, server_doc)

    seed_text = f"{world_seed}|{doc_seed}|{mutation_seed}"
    for rnd in range(n_rounds):
        _apply_mutation(world, seed_text, rnd, (oracle_doc, server_doc))
        expected = set(loop.refresh().value_rows())
        outcome = sub.refresh()
        assert outcome.served
        assert set(sub.rows) == expected, rnd
        assert _log(oracle_bus) == _log(server_bus), rnd
    loop.close()
    server.close()


# ---------------------------------------------------------------------------
# Non-lockstep load: the factory's bursty multi-tenant arrival trace
# ---------------------------------------------------------------------------

from repro.workloads.factory import fuzz_spec, generate  # noqa: E402


@given(seed=st.integers(min_value=0, max_value=2_000))
def test_bursty_arrival_trace_matches_loops(seed):
    """Serving under non-lockstep load: only the documents named by the
    factory's jittered/bursty arrival trace move each round (sometimes
    none, sometimes all), so most rounds leave some subscriptions
    untouched.  Per round: untouched subscriptions keep their rows,
    served ones match the independent-loop oracle, and the cumulative
    invocation logs stay identical."""
    gen = generate(fuzz_spec("bursty-tenants", seed))
    spec = gen.spec
    config = EngineConfig.serving(strategy=Strategy.LAZY_NFQ)

    oracle_bus = gen.make_bus()
    oracle_engine = LazyQueryEvaluator(oracle_bus, config=config)
    oracle_docs = [gen.make_document(i) for i in range(spec.n_documents)]
    server_bus = gen.make_bus()
    server = QueryServer(server_bus, config=config)
    server_docs = [gen.make_document(i) for i in range(spec.n_documents)]

    loops = []
    subs = []
    for i in range(spec.n_queries):
        query = gen.query_for(i)
        doc = gen.document_for_query(i)
        loops.append(
            (doc, ContinuousQuery(oracle_engine, query, oracle_docs[doc]))
        )
        subs.append(
            server.subscribe(
                gen.query_for(i),
                server_docs[doc],
                tenant=gen.tenant_for(i),
                name=f"sub-{i}",
            )
        )
    # Eager construction must already agree call for call.
    assert _log(oracle_bus) == _log(server_bus)

    for rnd, due_docs in enumerate(gen.arrival_trace()):
        for doc in due_docs:
            gen.apply_mutation(
                f"round{rnd}|doc{doc}",
                (oracle_docs[doc], server_docs[doc]),
            )
        # The oracle refreshes exactly the loops whose document moved,
        # in registration order — the server must discover the same due
        # set on its own (via document versions).
        for doc, loop in loops:
            if doc in due_docs:
                loop.refresh()
        server.run_round()
        expected = [set(loop.peek().value_rows()) for _, loop in loops]
        assert [set(sub.rows) for sub in subs] == expected, rnd
        assert _log(oracle_bus) == _log(server_bus), rnd

    for _, loop in loops:
        loop.close()
    server.close()
