"""Direct tests for the simulated network model."""

import pytest

from repro.services.simulation import InvocationLog, NetworkModel


def test_transfer_time_is_linear_in_bytes():
    network = NetworkModel(per_kb_s=0.5)
    assert network.transfer_time(0) == 0.0
    assert network.transfer_time(1024) == pytest.approx(0.5)
    assert network.transfer_time(2048) == pytest.approx(1.0)


def test_record_combines_latency_and_transfers():
    log = InvocationLog(network=NetworkModel(per_kb_s=1.0))
    record = log.record(
        service_name="s",
        call_node_id=3,
        request_bytes=1024,
        response_bytes=2048,
        service_latency_s=0.25,
        pushed_query=None,
        push_mode="none",
        returned_bindings=False,
        new_calls=0,
    )
    assert record.simulated_time_s == pytest.approx(0.25 + 1.0 + 2.0)
    assert record.sequence == 0


def test_sequence_numbers_increase():
    log = InvocationLog()
    first = log.record("a", None, 0, 0, 0.0, None, "none", False, 0)
    second = log.record("b", None, 0, 0, 0.0, None, "none", False, 0)
    assert (first.sequence, second.sequence) == (0, 1)


def test_default_network_is_cheap_but_nonzero():
    log = InvocationLog()
    record = log.record("a", None, 10_240, 0, 0.0, None, "none", False, 0)
    assert 0 < record.simulated_time_s < 1


def test_totals_and_repr():
    log = InvocationLog()
    log.record("a", None, 10, 20, 0.1, None, "none", False, 2)
    assert log.total_bytes == 30
    assert log.total_simulated_time_s > 0.1
    assert "calls=1" in repr(log)
