"""Matcher reuse across document evolution: the compiled-once path.

The incremental engine (PR 4) compiles one :class:`Matcher` per
relevance query and re-uses it round after round, calling ``reset()``
between evaluations; the shared-matching engine (this PR) does the same
with one :class:`PatternGroup` for the whole family.  Both re-use paths
are only sound if a matcher carries no state besides its memo tables —
this property pins that down: a single compiled matcher evaluated
across successive splices must agree, state by state, with a matcher
constructed fresh for every document state.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.pattern.match import Matcher
from repro.pattern.multimatch import PatternGroup
from repro.lazy.relevance import build_nfqs
from repro.services.registry import ServiceCall
from repro.workloads.synthetic import SyntheticWorld


def _rows(match_set):
    return sorted(
        (tuple(n.node_id for n in row.nodes), row.bindings)
        for row in match_set.rows
    )


def _splice_one(document, bus):
    """Invoke the lowest-id live call and splice its result; returns
    False when the document has no calls left."""
    calls = sorted(document.function_nodes(), key=lambda n: n.node_id)
    if not calls:
        return False
    call = calls[0]
    outcome = bus.invoke(
        ServiceCall(
            service=call.label,
            parameters=call.children,
            call_node_id=call.node_id,
        )
    )
    assert outcome.reply is not None
    document.replace_call(call, outcome.reply.forest)
    return True


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=50),
)
def test_reused_matcher_tracks_fresh_matcher_across_splices(
    world_seed, doc_seed
):
    """reset() + re-evaluate == construct fresh, on every splice state."""
    world = SyntheticWorld(seed=world_seed)
    document = world.make_document(doc_seed)
    query = world.sample_query(document, doc_seed)
    bus = world.bus()

    reused = Matcher(query)
    for _ in range(4):
        reused.reset()
        assert _rows(reused.evaluate(document)) == _rows(
            Matcher(query).evaluate(document)
        )
        if not _splice_one(document, bus):
            break


@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=30),
)
def test_reused_group_tracks_fresh_matchers_across_splices(
    world_seed, doc_seed
):
    """One compiled PatternGroup, re-evaluated after each splice, keeps
    returning exactly what fresh per-query matchers return — the
    engine's shared-matching reuse pattern."""
    world = SyntheticWorld(seed=world_seed)
    document = world.make_document(doc_seed)
    query = world.sample_query(document, doc_seed)
    nfqs = build_nfqs(query)
    if not nfqs:
        return
    bus = world.bus()

    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})
    for _ in range(3):
        result = group.evaluate(document)
        for rq in nfqs:
            assert _rows(result.match_sets[rq.target_uid]) == _rows(
                Matcher(rq.pattern).evaluate(document)
            ), rq.target_uid
        if not _splice_one(document, bus):
            break
