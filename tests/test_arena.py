"""The arena document store: columns, splices, scans, shards, twins.

Contract under test: the struct-of-arrays mirror
(:class:`repro.axml.arena.DocumentArena`) is an *observer* of the
object tree — never the source of truth — so every column answer
(descendant scans, projection sets, index buckets, sharded group
passes) must be indistinguishable from the object walk it replaces,
across construction, free-list splices, and whole factory mutation
traces.  Load-time projection (:func:`project_tree`) must prune only
provably-cold subtrees and stand down whenever it cannot prove
coldness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.axml.arena import (
    ANY_DATA,
    KIND_ELEMENT,
    KIND_FUNCTION,
    KIND_VALUE,
    DocumentArena,
    project_tree,
)
from repro.axml.builder import C, E, V, build_document
from repro.axml.index import LabelIndex
from repro.axml.node import NodeKind
from repro.axml.xmlio import parse_document
from repro.lazy.incremental import LabelFootprint
from repro.pattern.match import MatchCounter, Matcher, MatchSet, snapshot_result
from repro.pattern.multimatch import PatternGroup
from repro.pattern.parse import parse_pattern
from repro.pattern.shards import ShardedPatternGroup, plan_shards
from repro.services.scheduler import SchedulerPolicy
from repro.workloads.factory import REGIMES, fuzz_spec, generate, regime


def sample_document():
    return build_document(
        E(
            "root",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("rating", V("5")),
                E("nearby", C("getRestos", V("2nd Av."))),
            ),
            E("hotel", E("name", V("Ritz")), E("rating", V("5"))),
            C("getHotels", V("NY")),
        )
    )


# ---------------------------------------------------------------------------
# Columns and views
# ---------------------------------------------------------------------------


def test_build_mirrors_every_node():
    document = sample_document()
    arena = DocumentArena(document)
    assert arena.live_nodes == document.root.subtree_size()
    assert arena.capacity == arena.live_nodes
    assert arena.consistency_errors() == []
    for node in document.iter_nodes():
        slot = arena.slot_for(node)
        assert slot is not None
        assert arena.node_at(slot) is node
        assert arena.node_id[slot] == node.node_id
        children = [arena.node_at(c) for c in arena.child_slots(slot)]
        assert children == node.children


def test_kind_and_service_columns_screen_node_classes():
    document = sample_document()
    arena = DocumentArena(document)
    for node in document.iter_nodes():
        slot = arena.slot_for(node)
        expected = {
            NodeKind.ELEMENT: KIND_ELEMENT,
            NodeKind.VALUE: KIND_VALUE,
            NodeKind.FUNCTION: KIND_FUNCTION,
        }[node.kind]
        assert arena.kind[slot] == expected
        if node.is_function:
            assert arena.service[slot] == arena.label_id(node.label)
        else:
            assert arena.service[slot] == -1


def test_label_interning_is_append_only():
    document = sample_document()
    arena = DocumentArena(document)
    assert arena.label_id("no-such-label") is None
    lid = arena.label_id("hotel")
    assert lid is not None and arena.labels[lid] == "hotel"
    # Re-interning an existing label keeps its id.
    assert arena.intern("hotel") == lid
    # Removing the last carrier does not retire the id.
    hotel = document.root.children[0]
    document.remove_subtree(hotel)
    document.remove_subtree(document.root.children[0])
    assert arena.label_id("hotel") == lid


def test_arena_view_reads_the_columns():
    document = sample_document()
    arena = DocumentArena(document)
    root = arena.view(arena.root_slot)
    assert root.label == "root" and root.is_element and root.parent is None
    assert [v.label for v in root.children] == ["hotel", "hotel", "getHotels"]
    call_view = root.children[2]
    assert call_view.is_function and not call_view.is_data
    assert call_view.kind is NodeKind.FUNCTION
    assert call_view.parent.slot == arena.root_slot
    leaf = root.children[0].children[0].children[0]
    assert leaf.is_value and leaf.label == "Best Western"
    assert leaf.node_id == document.root.children[0].children[0].children[0].node_id


def test_slot_for_is_identity_checked():
    document = sample_document()
    twin = sample_document()
    arena = DocumentArena(document)
    # Same node ids, different document: never aliases a slot.
    for node in twin.iter_nodes():
        assert arena.slot_for(node) is None


# ---------------------------------------------------------------------------
# Splices and the free list
# ---------------------------------------------------------------------------


def test_remove_subtree_frees_slots_and_insert_recycles_them():
    document = sample_document()
    arena = DocumentArena(document)
    capacity = arena.capacity
    hotel = document.root.children[0]
    freed = hotel.subtree_size()
    document.remove_subtree(hotel)
    assert arena.live_nodes == document.root.subtree_size()
    assert arena.capacity == capacity  # slots freed, not dropped
    assert arena.slot_for(hotel) is None  # stale node no longer aliases
    assert arena.consistency_errors() == []

    # Re-inserting a smaller forest reuses freed slots: no growth.
    document.insert_subtree(document.root, E("hotel", E("name", V("Hilton"))))
    assert arena.capacity == capacity
    assert arena.consistency_errors() == []
    # A forest larger than the remaining free list grows the tail.
    big = E("annex", *[E("room", V(str(k))) for k in range(freed)])
    document.insert_subtree(document.root, big)
    assert arena.capacity > capacity
    assert arena.consistency_errors() == []


def test_replace_call_splices_through_the_free_list():
    document = sample_document()
    arena = DocumentArena(document)
    call_node = next(
        n for n in document.function_nodes() if n.label == "getHotels"
    )
    forest = [E("hotel", E("name", V("Plaza"))), C("getMore", V("NY"))]
    document.replace_call(call_node, forest)
    assert arena.splices_applied == 1
    assert arena.live_nodes == document.root.subtree_size()
    assert arena.consistency_errors() == []
    # Sibling chain reflects the post-splice child order.
    root_children = [
        arena.node_at(c) for c in arena.child_slots(arena.root_slot)
    ]
    assert root_children == document.root.children


def test_insert_at_position_relinks_the_sibling_chain():
    document = sample_document()
    arena = DocumentArena(document)
    document.insert_subtree(document.root, E("first"), position=0)
    children = [arena.node_at(c) for c in arena.child_slots(arena.root_slot)]
    assert children == document.root.children
    assert children[0].label == "first"
    assert arena.consistency_errors() == []


def test_detach_stops_mirroring():
    document = sample_document()
    arena = DocumentArena(document)
    arena.detach()
    document.remove_subtree(document.root.children[0])
    # The arena is stale by contract; the document must not notify it.
    assert arena.splices_applied == 0


# ---------------------------------------------------------------------------
# Column scans vs the object-walk oracle
# ---------------------------------------------------------------------------


def walk_descendants(roots, want_kind, want_labels, descend_into_params):
    out = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        code = {
            NodeKind.ELEMENT: KIND_ELEMENT,
            NodeKind.VALUE: KIND_VALUE,
            NodeKind.FUNCTION: KIND_FUNCTION,
        }[node.kind]
        kind_ok = code == want_kind or (
            want_kind == ANY_DATA and code != KIND_FUNCTION
        )
        if kind_ok and (want_labels is None or node.label in want_labels):
            out.append(node.node_id)
        if node.is_function and not descend_into_params:
            continue
        stack.extend(node.children)
    return sorted(out)


@pytest.mark.parametrize("descend", [True, False])
@pytest.mark.parametrize(
    "want_kind, labels",
    [
        (KIND_ELEMENT, {"hotel"}),
        (KIND_ELEMENT, {"name", "rating"}),
        (KIND_VALUE, {"5"}),
        (KIND_FUNCTION, None),
        (KIND_FUNCTION, {"getRestos"}),
        (ANY_DATA, None),
        (KIND_ELEMENT, {"absent"}),
    ],
)
def test_scan_descendants_agrees_with_the_object_walk(
    want_kind, labels, descend
):
    document = sample_document()
    arena = DocumentArena(document)
    want_ids = (
        None
        if labels is None
        else frozenset(
            lid
            for lid in (arena.label_id(lab) for lab in labels)
            if lid is not None
        )
    )
    got = sorted(
        arena.node_id[s]
        for s in arena.scan_descendants(
            [arena.root_slot], want_kind, want_ids, descend
        )
    )
    assert got == walk_descendants(
        [document.root], want_kind, labels, descend
    )


def test_scan_descendants_agrees_after_splices():
    document = sample_document()
    arena = DocumentArena(document)
    call_node = document.function_nodes()[0]
    document.replace_call(call_node, [E("hotel", E("name", V("Plaza")))])
    document.remove_subtree(document.root.children[0])
    lid = arena.label_id("hotel")
    got = sorted(
        arena.node_id[s]
        for s in arena.scan_descendants(
            [arena.root_slot], KIND_ELEMENT, frozenset({lid}), False
        )
    )
    assert got == walk_descendants(
        [document.root], KIND_ELEMENT, {"hotel"}, False
    )


def test_collect_projection_agrees_with_the_object_walk():
    document = sample_document()
    arena = DocumentArena(document)
    data_ids = frozenset(
        lid
        for lid in (arena.label_id(lab) for lab in ("name", "5"))
        if lid is not None
    )
    projected = arena.collect_projection(data_ids, frozenset(), False)

    expected = set()
    for node in document.iter_nodes():
        if not node.is_function and node.label in ("name", "5"):
            cursor = node
            while cursor is not None:
                expected.add(cursor.node_id)
                cursor = cursor.parent
    assert projected == expected

    # any_function pulls in every call's ancestor chain too.
    with_calls = arena.collect_projection(data_ids, frozenset(), True)
    for call_node in document.function_nodes():
        assert call_node.node_id in with_calls
    assert projected <= with_calls


def test_rebuild_index_buckets_matches_the_walk_rebuild():
    document = sample_document()
    arena = DocumentArena(document)
    document.replace_call(
        document.function_nodes()[0], [E("hotel", C("getMore", V("x")))]
    )
    via_arena = LabelIndex(document, arena=arena)
    via_walk = LabelIndex(document)
    assert {k: set(v) for k, v in via_arena.labels.items()} == {
        k: set(v) for k, v in via_walk.labels.items()
    }
    assert {k: set(v) for k, v in via_arena.functions.items()} == {
        k: set(v) for k, v in via_walk.functions.items()
    }
    via_arena.detach()
    via_walk.detach()


# ---------------------------------------------------------------------------
# Load-time projection
# ---------------------------------------------------------------------------


def footprint_for(text: str) -> LabelFootprint:
    return LabelFootprint.from_pattern(parse_pattern(text))


def test_project_tree_stands_down_without_a_footprint():
    root = sample_document().root.clone()
    _, pruned = project_tree(root, None)
    assert pruned == 0


def test_project_tree_stands_down_on_a_data_wildcard():
    footprint = footprint_for("/root/*")
    assert footprint.matches_any_data
    root = sample_document().root.clone()
    size = root.subtree_size()
    _, pruned = project_tree(root, footprint)
    assert pruned == 0 and root.subtree_size() == size


def test_project_tree_prunes_cold_subtrees_and_keeps_ancestors():
    footprint = footprint_for('/root/hotel/name/"Ritz"')
    assert not footprint.matches_any_data
    root = sample_document().root.clone()
    size = root.subtree_size()
    _, pruned = project_tree(root, footprint)
    assert pruned > 0
    assert root.subtree_size() == size - pruned
    labels = {n.label for n in root.iter_subtree()}
    assert "name" in labels  # the hot path survives with its ancestors
    assert "rating" not in labels  # provably cold: no test touches it


def test_project_tree_keeps_function_parameters_atomic():
    footprint = footprint_for("/root/nearby/getRestos()")
    root = E(
        "root",
        E("nearby", C("getRestos", V("2nd Av."), E("radius", V("5")))),
        E("cold", V("x")),
    )
    _, pruned = project_tree(root, footprint)
    call_node = root.children[0].children[0]
    assert call_node.is_function
    # The whole parameter forest rides along with the kept call.
    assert [c.label for c in call_node.children] == ["2nd Av.", "radius"]
    assert pruned == 2  # only the cold element and its value leaf


def test_build_document_applies_projection_and_records_the_count():
    footprint = footprint_for('/root/hotel/name/"Ritz"')
    plain = sample_document()
    projected = build_document(
        sample_document().root.clone(), project=footprint
    )
    assert projected.projection_pruned_at_load > 0
    assert (
        projected.root.subtree_size()
        == plain.root.subtree_size() - projected.projection_pruned_at_load
    )
    # The projected document still answers the footprint's query exactly
    # (compared structurally — the twins assign different node ids).
    query = parse_pattern('/root/hotel/name/"Ritz"')
    assert sorted(
        tuple(n.label for n in row.nodes)
        for row in snapshot_result(query, projected)
    ) == sorted(
        tuple(n.label for n in row.nodes)
        for row in snapshot_result(query, plain)
    )


def test_parse_document_applies_projection():
    text = (
        "<root><a><keep>1</keep></a><b><drop>2</drop></b></root>"
    )
    footprint = footprint_for('/root/a/keep/"1"')
    document = parse_document(text, project=footprint)
    # The whole <b> subtree (b, drop, "2") holds only cold data.
    assert document.projection_pruned_at_load == 3
    assert {n.label for n in document.root.iter_subtree()} >= {"root", "a", "keep"}
    assert all(n.label != "drop" for n in document.root.iter_subtree())


# ---------------------------------------------------------------------------
# Matcher / group equivalence: arena fast paths vs the object walk
# ---------------------------------------------------------------------------

QUERIES = [
    '/root/hotel/name/"Ritz"',
    "/root//name/$x",
    "/root//getRestos()",
    "/root/*//$v",
]


def row_keys(match_set):
    return sorted(MatchSet.row_key(row) for row in match_set)


@pytest.mark.parametrize("text", QUERIES)
def test_group_pass_rows_match_with_and_without_the_arena(text):
    document = sample_document()
    arena = DocumentArena(document)
    query = parse_pattern(text)
    plain = PatternGroup({"q": query}).evaluate(document)
    fast = PatternGroup({"q": query}, arena=arena).evaluate(document)
    assert row_keys(fast.match_sets["q"]) == row_keys(plain.match_sets["q"])


def test_group_pass_rows_match_after_splices():
    document = sample_document()
    arena = DocumentArena(document)
    document.replace_call(
        document.function_nodes()[0],
        [E("hotel", E("name", V("Ritz")), E("rating", V("3")))],
    )
    document.remove_subtree(document.root.children[1])
    for text in QUERIES:
        query = parse_pattern(text)
        plain = PatternGroup({"q": query}).evaluate(document)
        fast = PatternGroup({"q": query}, arena=arena).evaluate(document)
        assert row_keys(fast.match_sets["q"]) == row_keys(
            plain.match_sets["q"]
        ), text


# ---------------------------------------------------------------------------
# Shard-parallel group passes
# ---------------------------------------------------------------------------


def test_plan_shards_is_contiguous_and_balanced():
    document = sample_document()
    children = document.root.children
    ranges = plan_shards(children, 2)
    assert [n for r in ranges for n in r] == children
    sizes = [len(r) for r in ranges]
    assert max(sizes) - min(sizes) <= 1
    # More shards than children degrades to singletons, never empties.
    many = plan_shards(children, 10)
    assert len(many) == len(children)
    assert all(len(r) == 1 for r in many)
    assert plan_shards([], 4) == []
    with pytest.raises(ValueError):
        plan_shards(children, 0)


@pytest.mark.parametrize("shards", [2, 3, 4, 8])
def test_sharded_pass_matches_the_serial_pass(shards):
    document = sample_document()
    arena = DocumentArena(document)
    members = {
        "names": parse_pattern("/root//name/$x"),
        "calls": parse_pattern("/root//getRestos()"),
    }
    serial = PatternGroup(members, arena=arena).evaluate(document)
    sharded = ShardedPatternGroup(
        members, shards=shards, arena=arena
    ).evaluate(document)
    assert sharded.shard_passes == min(shards, len(document.root.children))
    for key in members:
        assert row_keys(sharded.match_sets[key]) == row_keys(
            serial.match_sets[key]
        )
    assert sharded.merge_rows == sum(
        len(ms) for ms in sharded.match_sets.values()
    )


def test_sharded_pass_is_independent_of_thread_overlap():
    document = sample_document()
    members = {"names": parse_pattern("/root//name/$x")}
    threaded = ShardedPatternGroup(
        members,
        shards=3,
        scheduler=SchedulerPolicy(max_concurrency=3, use_threads=True),
    ).evaluate(document)
    serial = ShardedPatternGroup(
        members,
        shards=3,
        scheduler=SchedulerPolicy(max_concurrency=3, use_threads=False),
    ).evaluate(document)
    assert row_keys(threaded.match_sets["names"]) == row_keys(
        serial.match_sets["names"]
    )
    assert threaded.shard_passes == serial.shard_passes


def test_sharding_stands_down_on_multi_child_member_roots():
    document = sample_document()
    members = {
        # Two children under the pattern root: a row can straddle two
        # depth-1 subtrees, so the composition law does not apply.
        "pair": parse_pattern("/root[hotel/name/$a][hotel/rating/$b]"),
    }
    group = ShardedPatternGroup(members, shards=4)
    assert not group.shardable(document, ["pair"])
    result = group.evaluate(document)
    assert result.shard_passes == 0
    plain = PatternGroup(members).evaluate(document)
    assert row_keys(result.match_sets["pair"]) == row_keys(
        plain.match_sets["pair"]
    )


def test_sharding_stands_down_on_a_single_subtree_root():
    document = build_document(E("root", E("only", E("name", V("x")))))
    members = {"q": parse_pattern("/root//name/$x")}
    result = ShardedPatternGroup(members, shards=4).evaluate(document)
    assert result.shard_passes == 0
    assert len(result.match_sets["q"]) == 1


def test_sharded_group_membership_tracks_extend_and_discard():
    members = {"a": parse_pattern("/root//name/$x")}
    group = ShardedPatternGroup(members, shards=2)
    group.extend({"b": parse_pattern("/root//rating/$r")})
    assert len(group) == 2 and "b" in group
    group.discard(["a"])
    assert group.keys() == ["b"]
    document = sample_document()
    result = group.evaluate(document)
    assert set(result.match_sets) == {"b"}


def test_shard_counters_drain_into_the_shared_counter():
    document = sample_document()
    members = {"q": parse_pattern("/root//name/$x")}
    group = ShardedPatternGroup(members, shards=2)
    group.evaluate(document)
    assert group.counter.evaluations > 0
    assert all(g.counter.evaluations == 0 for g in group._groups)


# ---------------------------------------------------------------------------
# Engine integration: config-level equivalence on factory regimes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name", ["baseline", "deep-recursion", "multi-root-standing"]
)
def test_engine_rows_and_logs_match_under_arena_and_shards(name):
    gen = regime(name)
    query = gen.query_for(0)
    base, base_log = gen.evaluate(query, shared_matching=True)
    reference = gen.oracle_rows(query)
    for overrides in (
        {"arena": True},
        {"arena": True, "shared_matching": True},
        {"arena": True, "shared_matching": True, "shards": 4},
    ):
        out, log = gen.evaluate(query, **overrides)
        assert set(out.value_rows()) == reference, overrides
        assert sorted(out.value_rows()) == sorted(base.value_rows())
        assert log == base_log, overrides


def test_engine_reports_arena_and_shard_metrics():
    # deep-recursion query 0 has a single-child root over a multi-subtree
    # document, so the sharded pass actually engages (multi-root-standing
    # queries defeat sharding by design — covered above).
    gen = regime("deep-recursion")
    out, _ = gen.evaluate(
        gen.query_for(0), arena=True, shared_matching=True, shards=4
    )
    assert out.metrics.arena_nodes > 0
    assert out.metrics.arena_bytes > 0
    assert out.metrics.shard_passes > 0
    assert out.metrics.shard_merge_rows >= len(out.value_rows())


# ---------------------------------------------------------------------------
# Arena existence probes: the column screen is the whole leaf test
# ---------------------------------------------------------------------------


def test_arena_exists_below_skips_can_for_leaf_steps():
    """The column prefilter in ``_exists_below_arena`` is exactly the
    node test for every non-OR pattern kind, so a *leaf* probe needs no
    per-survivor ``_can`` re-judgement — pinned by the counter."""
    document = sample_document()
    arena = DocumentArena(document)
    counter = MatchCounter()
    pattern = parse_pattern("/root//name")
    matcher = Matcher(pattern, counter=counter, arena=arena)
    matcher._reset_memos()
    name_step = pattern.root.children[0]
    assert not name_step.children  # a leaf condition
    assert matcher._exists_below(name_step, document.root)
    assert counter.can_checks == 0, counter.can_checks
    # The object-walk twin pays a can-check per candidate it judges.
    plain_counter = MatchCounter()
    plain = Matcher(pattern, counter=plain_counter)
    plain._reset_memos()
    assert plain._exists_below(name_step, document.root)
    assert plain_counter.can_checks > 0


def test_arena_exists_below_still_judges_interior_steps():
    """Interior probe targets carry child conditions the column screen
    cannot see — those survivors must still go through ``_can``."""
    document = sample_document()
    arena = DocumentArena(document)
    counter = MatchCounter()
    pattern = parse_pattern("/root//hotel/name")
    matcher = Matcher(pattern, counter=counter, arena=arena)
    matcher._reset_memos()
    hotel_step = pattern.root.children[0]
    assert hotel_step.children  # interior: has the name condition
    assert matcher._exists_below(hotel_step, document.root)
    assert counter.can_checks > 0


# ---------------------------------------------------------------------------
# Column matching: slot-space passes vs the object walk
# ---------------------------------------------------------------------------


def column_row_ids(match_set):
    return [
        (tuple(id(n) for n in row.nodes), row.bindings) for row in match_set
    ]


@pytest.mark.parametrize("text", QUERIES)
def test_column_match_rows_and_bindings_pin_to_the_object_walk(text):
    document = sample_document()
    arena = DocumentArena(document)
    query = parse_pattern(text)
    counter = MatchCounter()
    plain = Matcher(query, arena=arena).evaluate(document)
    column = Matcher(
        query, counter=counter, arena=arena, column_match=True
    ).evaluate(document)
    # Full row-by-row equality, order and first-witness bindings
    # included — not just the sorted key sets.
    assert column_row_ids(column) == column_row_ids(plain)
    if text == "/root/*//$v":
        # Interior data wildcard: the plan compiler stands down and the
        # object walk answers.
        assert counter.column_fallbacks == 1
        assert counter.column_rows == 0
    else:
        assert counter.column_fallbacks == 0
        assert counter.column_rows == len(plain)


def test_column_match_auto_off_without_an_arena():
    query = parse_pattern("/root//name/$x")
    counter = MatchCounter()
    matcher = Matcher(query, counter=counter, column_match=True)
    assert not matcher.column_match
    result = matcher.evaluate(sample_document())
    assert len(result) == 2
    assert counter.column_rows == 0
    assert counter.column_fallbacks == 0  # never armed, never fell back


def test_column_match_falls_back_on_an_unmirrored_root():
    document = sample_document()
    arena = DocumentArena(document)
    other = sample_document()  # not mirrored by this arena
    query = parse_pattern("/root//name/$x")
    counter = MatchCounter()
    matcher = Matcher(query, counter=counter, arena=arena, column_match=True)
    result = matcher.evaluate(other)
    assert len(result) == 2
    assert counter.column_fallbacks == 1
    assert counter.column_rows == 0


@pytest.mark.parametrize("text", QUERIES)
def test_scoped_column_match_pins_to_the_scoped_object_walk(text):
    document = sample_document()
    arena = DocumentArena(document)
    query = parse_pattern(text)
    for scope in (
        document.root.children[0],
        document.root.children[:2],
        document.root.children,
    ):
        counter = MatchCounter()
        plain = Matcher(query, arena=arena).evaluate_scoped(document, scope)
        column = Matcher(
            query, counter=counter, arena=arena, column_match=True
        ).evaluate_scoped(document, scope)
        assert column_row_ids(column) == column_row_ids(plain)


def test_column_match_survives_splices():
    document = sample_document()
    arena = DocumentArena(document)
    query = parse_pattern("/root//name/$x")
    matcher = Matcher(query, arena=arena, column_match=True)
    document.replace_call(
        document.function_nodes()[0],
        [E("hotel", E("name", V("Ritz")), E("rating", V("3")))],
    )
    document.remove_subtree(document.root.children[1])
    plain = Matcher(query, arena=arena).evaluate(document)
    assert column_row_ids(matcher.evaluate(document)) == column_row_ids(plain)


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_column_pass_matches_the_serial_walk(shards):
    """The combined axis: scoped evaluation inside sharded group passes
    with the column matcher on, against the plain serial walk."""
    document = sample_document()
    arena = DocumentArena(document)
    members = {
        "names": parse_pattern("/root//name/$x"),
        "calls": parse_pattern("/root//getRestos()"),
    }
    serial = PatternGroup(members).evaluate(document)
    sharded = ShardedPatternGroup(
        members, shards=shards, arena=arena, column_match=True
    ).evaluate(document)
    assert sharded.shard_passes == min(shards, len(document.root.children))
    for key in members:
        assert row_keys(sharded.match_sets[key]) == row_keys(
            serial.match_sets[key]
        )


def test_engine_rows_and_logs_match_under_column_matching():
    for name in ("baseline", "deep-recursion", "multi-root-standing"):
        gen = regime(name)
        query = gen.query_for(0)
        base, base_log = gen.evaluate(query, shared_matching=True)
        reference = gen.oracle_rows(query)
        for overrides in (
            {"arena": True, "column_match": True},
            {"arena": True, "shared_matching": True, "column_match": True},
            {
                "arena": True,
                "shared_matching": True,
                "shards": 4,
                "column_match": True,
            },
        ):
            out, log = gen.evaluate(query, **overrides)
            assert set(out.value_rows()) == reference, (name, overrides)
            assert log == base_log, (name, overrides)


def test_engine_reports_column_metrics():
    gen = regime("deep-recursion")
    out, _ = gen.evaluate(
        gen.query_for(0), arena=True, shared_matching=True, column_match=True
    )
    metrics = out.metrics
    assert metrics.column_rows + metrics.column_fallbacks > 0
    if metrics.column_rows:
        assert metrics.column_pass_nodes > 0
    assert "col-" in metrics.summary()


# ---------------------------------------------------------------------------
# The twin-document property (Hypothesis)
# ---------------------------------------------------------------------------


class DeltaRecorder:
    """Structural transcript of a document's splice stream."""

    def __init__(self, document):
        self.document = document
        self.deltas = []
        document.add_observer(self)

    def call_removed(self, document, node):
        pass

    def calls_added(self, document, nodes):
        pass

    def splice(self, document, delta):
        parent = delta.parent
        self.deltas.append(
            (
                tuple(_shape(root) for root in delta.removed),
                tuple(_shape(root) for root in delta.added),
                None if parent is None else parent.label,
            )
        )


def _shape(node):
    return (node.kind, node.label, tuple(_shape(c) for c in node.children))


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(sorted(REGIMES)),
    seed=st.integers(min_value=0, max_value=40),
)
def test_twin_documents_stay_equal_under_shared_mutation_traces(name, seed):
    """An arena-mirrored document and its plain twin, driven by the same
    factory mutation trace, must stay structurally equal — with the
    arena consistent and its index buckets equal to a walk rebuild
    after every step."""
    gen = generate(fuzz_spec(name, seed=seed))
    mirrored = gen.make_document(0)
    plain = gen.make_document(0)
    arena = DocumentArena(mirrored)
    mirrored_log = DeltaRecorder(mirrored)
    plain_log = DeltaRecorder(plain)
    index = LabelIndex(mirrored, arena=arena)  # maintained incrementally
    try:
        for step in range(6):
            gen.apply_mutation(str(step), (mirrored, plain))
            assert mirrored.root.structurally_equal(plain.root)
            assert arena.consistency_errors() == []
            walk = LabelIndex(plain)
            assert {k: len(v) for k, v in index.labels.items() if v} == {
                k: len(v) for k, v in walk.labels.items()
            }
            assert {k: len(v) for k, v in index.functions.items() if v} == {
                k: len(v) for k, v in walk.functions.items()
            }
            walk.detach()
        assert mirrored_log.deltas == plain_log.deltas
        assert arena.splices_applied == len(mirrored_log.deltas)
    finally:
        index.detach()
        arena.detach()
