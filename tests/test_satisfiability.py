"""Unit tests for the exact satisfiability oracle (Definition 6)."""

import pytest

from repro.pattern.nodes import EdgeKind, PatternKind, PatternNode
from repro.pattern.parse import parse_pattern
from repro.pattern.pattern import TreePattern
from repro.schema.satisfiability import AlwaysSatisfiable, ExactSatisfiability
from repro.schema.schema import parse_schema
from repro.workloads.hotels import HOTELS_SCHEMA_TEXT


@pytest.fixture
def oracle():
    return ExactSatisfiability(parse_schema(HOTELS_SCHEMA_TEXT))


def value_pattern(text):
    return TreePattern(PatternNode(PatternKind.VALUE, text))


def test_direct_output_type_match(oracle):
    q = parse_pattern('/restaurant[rating="5"]')
    assert oracle.function_satisfies("getNearbyRestos", q)
    assert not oracle.function_satisfies("getNearbyMuseums", q)


def test_value_outputs(oracle):
    assert oracle.function_satisfies("getRating", value_pattern("5"))
    assert not oracle.function_satisfies("getNearbyRestos", value_pattern("5"))


def test_derived_instances_count(oracle):
    # getHotels -> hotel -> nearby -> getNearbyRestos -> restaurant:
    # a restaurant query is satisfiable via two levels of derivation.
    q = parse_pattern("/restaurant")
    assert oracle.function_satisfies("getHotels", q, EdgeKind.DESCENDANT)
    # ...but not at the immediate output level.
    assert not oracle.function_satisfies("getHotels", q, EdgeKind.CHILD)


def test_anchor_edge_distinguishes_depth(oracle):
    q = parse_pattern("/name")
    assert not oracle.function_satisfies("getHotels", q, EdgeKind.CHILD)
    assert oracle.function_satisfies("getHotels", q, EdgeKind.DESCENDANT)


def test_nested_subquery_conditions(oracle):
    q = parse_pattern('/hotel[name="Best Western"][rating="5"]/nearby')
    assert oracle.function_satisfies("getHotels", q)
    q_bad = parse_pattern("/hotel/pool")
    assert not oracle.function_satisfies("getHotels", q_bad)


def test_function_letters_expand_inside_content():
    # rating = (data | getRating): a rating value can arrive via a call.
    schema = parse_schema(
        """
        functions:
          getH = [in: data, out: hotel]
          getR = [in: data, out: data]
        elements:
          hotel  = rating
          rating = getR
        """
    )
    oracle = ExactSatisfiability(schema)
    q = parse_pattern('/hotel/rating/"5"')
    assert oracle.function_satisfies("getH", q)


def test_undeclared_function_satisfies_everything(oracle):
    q = parse_pattern("/whatever[strange]/shape")
    assert oracle.function_satisfies("unknownService", q)


def test_exactness_on_exclusive_alternation():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: root]
        elements:
          root = (a | b)
          a = data
          b = data
        """
    )
    oracle = ExactSatisfiability(schema)
    assert oracle.function_satisfies("f", parse_pattern("/root[a]"))
    assert oracle.function_satisfies("f", parse_pattern("/root[b]"))
    # One root cannot have both an a and a b child.
    assert not oracle.function_satisfies("f", parse_pattern("/root[a][b]"))


def test_homomorphic_children_share_one_occurrence():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: root]
        elements:
          root = a
          a = data
        """
    )
    oracle = ExactSatisfiability(schema)
    # Two pattern children both labelled a can map to the same child.
    assert oracle.function_satisfies("f", parse_pattern("/root[a][a]"))


def test_cardinality_via_star():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: root]
        elements:
          root = a.b?
          a = data
          b = data
        """
    )
    oracle = ExactSatisfiability(schema)
    assert oracle.function_satisfies("f", parse_pattern("/root[a][b]"))


def test_recursive_output_types_terminate():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: node*]
        elements:
          node = label.(node | f)*
          label = data
        """
    )
    oracle = ExactSatisfiability(schema)
    q = parse_pattern("/node//node/label")
    assert oracle.function_satisfies("f", q)


def test_any_typed_output_satisfies(oracle):
    schema = parse_schema(
        """
        functions:
          wild = [in: data, out: any]
        elements:
          a = data
        """
    )
    o = ExactSatisfiability(schema)
    assert o.function_satisfies("wild", parse_pattern("/zany[thing]"))


def test_pattern_satisfiable_under_element(oracle):
    q = parse_pattern('/nearby//restaurant[rating="5"]')
    assert oracle.pattern_satisfiable_under("nearby", q.subtree_at(q.root))
    assert not oracle.pattern_satisfiable_under("museum", q)


def test_rejects_extended_patterns(oracle):
    from repro.pattern.nodes import pelem, pfunc, por

    bad = TreePattern(pelem("hotel", por(pelem("a"), pfunc(None))))
    with pytest.raises(ValueError):
        oracle.function_satisfies("getHotels", bad)


def test_always_satisfiable_oracle():
    oracle = AlwaysSatisfiable()
    assert oracle.function_satisfies("anything", parse_pattern("/x/y"))
