"""Unit tests for symbolic NFAs: membership, products, prefixes.

These are the language operations Proposition 3 and condition (*) are
built on, so they get their own careful coverage.
"""

from repro.pattern.nodes import EdgeKind
from repro.pattern.parse import parse_pattern
from repro.pattern.pattern import LinearStep
from repro.schema.automata import (
    from_linear_steps,
    from_regex,
    languages_intersect,
    some_word_is_prefix_of,
    symbols_compatible,
    word_automaton,
)
from repro.schema.regex import ANY, parse_regex


def nfa(text):
    return from_regex(parse_regex(text))


def steps_of(query_text, label, include_node=True):
    q = parse_pattern(query_text)
    node = [n for n in q.nodes() if n.label == label][0]
    return q.linear_steps_to(node, include_node=include_node)


def test_symbol_compatibility():
    assert symbols_compatible("a", "a")
    assert symbols_compatible("a", ANY)
    assert symbols_compatible(ANY, ANY)
    assert not symbols_compatible("a", "b")


def test_regex_membership():
    m = nfa("(a|b)*.c")
    assert m.accepts(["c"])
    assert m.accepts(["a", "b", "b", "c"])
    assert not m.accepts([])
    assert not m.accepts(["a", "c", "c"])


def test_plus_and_maybe():
    assert nfa("a+").accepts(["a", "a"])
    assert not nfa("a+").accepts([])
    assert nfa("a?").accepts([])
    assert not nfa("a?").accepts(["a", "a"])


def test_any_letter_matches_anything():
    m = nfa("any*.end")
    assert m.accepts(["x", "y", "end"])
    assert m.accepts(["end"])
    assert not m.accepts(["x", "y"])


def test_is_empty():
    assert not nfa("a").is_empty()
    assert not nfa("a*").is_empty()


def test_word_automaton():
    m = word_automaton(["a", "b"])
    assert m.accepts(["a", "b"])
    assert not m.accepts(["a"])
    assert not m.accepts(["a", "b", "c"])


def test_linear_steps_child_only():
    m = from_linear_steps(steps_of("/hotels/hotel/rating", "rating"))
    assert m.accepts(["hotels", "hotel", "rating"])
    assert not m.accepts(["hotels", "rating"])


def test_linear_steps_descendant_gap():
    m = from_linear_steps(steps_of("/a//b/c", "c"))
    assert m.accepts(["a", "b", "c"])
    assert m.accepts(["a", "x", "y", "b", "c"])
    assert not m.accepts(["a", "x", "c"])


def test_linear_steps_star_is_any():
    m = from_linear_steps(steps_of("/a/*/c", "c"))
    assert m.accepts(["a", "anything", "c"])
    assert not m.accepts(["a", "c"])


def test_descendant_tail_suffix():
    steps = steps_of("/a/b", "b")
    plain = from_linear_steps(steps)
    tailed = from_linear_steps(steps, descendant_tail=True)
    assert plain.accepts(["a", "b"]) and tailed.accepts(["a", "b"])
    assert not plain.accepts(["a", "b", "x", "y"])
    assert tailed.accepts(["a", "b", "x", "y"])


def test_intersection_basics():
    assert languages_intersect(nfa("a.b"), nfa("a.any"))
    assert not languages_intersect(nfa("a.b"), nfa("a.b.c"))
    assert not languages_intersect(nfa("a"), nfa("b"))
    assert languages_intersect(nfa("(a|b).c"), nfa("b.c"))


def test_intersection_with_any_star_gap():
    left = from_linear_steps(steps_of("/r//x", "x"))
    right = from_linear_steps(steps_of("/r/a/x", "x"))
    assert languages_intersect(left, right)


def test_prefix_closure_semantics():
    closed = nfa("a.b.c").prefix_closed()
    for word in ([], ["a"], ["a", "b"], ["a", "b", "c"]):
        assert closed.accepts(word)
    assert not closed.accepts(["b"])
    assert not closed.accepts(["a", "b", "c", "d"])


def test_some_word_is_prefix_of():
    # Proposition 3's primitive.
    assert some_word_is_prefix_of(nfa("a"), nfa("a.b"))
    assert some_word_is_prefix_of(nfa("a.b"), nfa("a.b"))  # equality counts
    assert not some_word_is_prefix_of(nfa("a.b"), nfa("a"))
    assert some_word_is_prefix_of(nfa("a.any*"), nfa("a.x.y.z"))


def test_prefix_with_descendant_languages():
    nearby = from_linear_steps(steps_of("/hotels/hotel/nearby", "nearby"))
    rating = from_linear_steps(
        steps_of("/hotels/hotel/nearby//restaurant/rating", "rating")
    )
    assert some_word_is_prefix_of(nearby, rating)
    assert not some_word_is_prefix_of(rating, nearby)
