"""Profile mode for the benchmark suite.

``pytest benchmarks/ --trace-profile`` routes every
``evaluate_workload()`` call through a shared in-memory trace sink and
prints an aggregate per-phase breakdown at the end of the session;
``--trace-out FILE`` additionally streams the raw spans as JSONL (and
implies ``--trace-profile``).  The flag is spelled ``--trace-profile``
because pytest reserves ``--trace`` for its debugger.

When profiling was requested but no spans were collected, the session
exits nonzero — so tracing cannot silently rot out of the engine.
"""

import bench_harness

from repro.obs.profile import format_phase_profile, phase_profile
from repro.obs.trace import InMemorySink, JsonlSink, TeeSink


def pytest_addoption(parser):
    group = parser.getgroup("trace-profile", "evaluation tracing")
    group.addoption(
        "--trace-profile",
        action="store_true",
        default=False,
        help="trace every evaluation and print a per-phase breakdown",
    )
    group.addoption(
        "--trace-out",
        default=None,
        help="write raw spans as JSONL to this path (implies --trace-profile)",
    )


def pytest_configure(config):
    out = config.getoption("--trace-out")
    if not (config.getoption("--trace-profile") or out):
        return
    collector = InMemorySink()
    sink = collector
    jsonl = None
    if out:
        jsonl = JsonlSink(out)
        sink = TeeSink(collector, jsonl)
    config._trace_profile = (collector, jsonl, out)
    bench_harness.enable_trace(sink, collector)


def pytest_sessionfinish(session, exitstatus):
    state = getattr(session.config, "_trace_profile", None)
    if state is None:
        return
    collector, jsonl, out = state
    if jsonl is not None:
        jsonl.close()
    profile = phase_profile(collector.roots)
    print()
    print(format_phase_profile(profile, title="benchmark phase profile"))
    if out:
        print(f"(raw spans written to {out})")
    if not profile:
        print("ERROR: --trace-profile was on but no spans were collected")
        session.exitstatus = 1
