"""E6 — Exact vs lenient relevance analysis: the accuracy/speed trade.

Paper claims (Sections 5-6.1): exact satisfiability is exponential in
schema+query ("unlikely that an algorithm with a lower time complexity
exists"); the implementation uses "a lenient description of the output
types ... tested in time polynomial in the size of the schema", trading
"accuracy for efficiency, running somewhat more lenient (but faster)
analysis, that invokes all relevant calls but possibly some more".

Regenerates: per-oracle analysis wall time and invocation counts on the
hotels scenario, plus a micro-benchmark of the two satisfiability tests
on a schema where they disagree.
"""

import time

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy, TypingMode
from repro.pattern.parse import parse_pattern
from repro.schema.graphschema import LenientSatisfiability
from repro.schema.satisfiability import ExactSatisfiability
from repro.schema.schema import parse_schema
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

TYPINGS = [
    ("no-types", dict(strategy=Strategy.LAZY_NFQ)),
    (
        "lenient",
        dict(strategy=Strategy.LAZY_NFQ_TYPED, typing=TypingMode.LENIENT),
    ),
    ("exact", dict(strategy=Strategy.LAZY_NFQ_TYPED, typing=TypingMode.EXACT)),
]

SIZES = [20, 60, 120]

# A schema engineered to make the oracles disagree: content models with
# exclusive alternation, which the graph schema flattens.
DISAGREEMENT_SCHEMA = parse_schema(
    """
    functions:
      getBlock = [in: data, out: block*]
    elements:
      root  = block*.getBlock*
      block = (left | right)
      left  = data
      right = data
    """
)
DISAGREEMENT_QUERY = parse_pattern("/block[left][right]")


def sweep():
    rows = []
    stats = {}
    for n in SIZES:
        wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=n, seed=9))
        for name, cfg in TYPINGS:
            outcome, _ = evaluate_workload(wl, **cfg)
            m = outcome.metrics
            rows.append(
                (n, name, m.calls_invoked, m.analysis_wall_s * 1000, len(outcome.rows))
            )
            stats[(n, name)] = m
    return rows, stats


def test_e6_report(benchmark, capsys):
    rows, stats = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E6: relevance analysis accuracy vs cost (hotels(n))",
            ["n_hotels", "typing", "calls", "analysis_ms", "rows"],
            rows,
        )
    for n in SIZES:
        none, lenient, exact = (
            stats[(n, "no-types")],
            stats[(n, "lenient")],
            stats[(n, "exact")],
        )
        # Safety ladder: typing only removes invocations, never rows.
        assert exact.calls_invoked <= lenient.calls_invoked <= none.calls_invoked
        assert none.result_rows == lenient.result_rows == exact.result_rows


def test_e6_oracles_disagree_by_design(benchmark):
    lenient = LenientSatisfiability(DISAGREEMENT_SCHEMA)
    exact = ExactSatisfiability(DISAGREEMENT_SCHEMA)
    assert lenient.function_satisfies("getBlock", DISAGREEMENT_QUERY)
    assert not exact.function_satisfies("getBlock", DISAGREEMENT_QUERY)

    def both():
        l = LenientSatisfiability(DISAGREEMENT_SCHEMA)
        e = ExactSatisfiability(DISAGREEMENT_SCHEMA)
        return (
            l.function_satisfies("getBlock", DISAGREEMENT_QUERY),
            e.function_satisfies("getBlock", DISAGREEMENT_QUERY),
        )

    benchmark(both)


@pytest.mark.parametrize("oracle_name", ["lenient", "exact"])
def test_e6_oracle_microbench(benchmark, oracle_name):
    """Cold-cache satisfiability of the paper query's subtrees."""
    from repro.workloads.hotels import figure_1_schema, paper_query

    schema = figure_1_schema()
    query = paper_query()
    subtrees = [
        query.subtree_at(node)
        for node in query.nodes()
        if node.parent is not None
    ]
    names = schema.function_names()

    def run():
        oracle = (
            LenientSatisfiability(schema)
            if oracle_name == "lenient"
            else ExactSatisfiability(schema)
        )
        verdicts = 0
        for sub in subtrees:
            for fname in names:
                if oracle.function_satisfies(fname, sub):
                    verdicts += 1
        return verdicts

    benchmark(run)
