"""E11 — incremental relevance analysis: label index + memoized NFQs.

Paper claim (Section 6.2): relevance detection "must be maintained as
the document evolves"; the paper's answer is to keep detection work
proportional to what changed, not to the document.  This experiment
regenerates that claim for the splice-delta machinery of
``repro.lazy.incremental``:

* **Detection under evolution** (the headline sweep): a hotels document
  of growing size receives a stream of updates — mostly splices and
  insertions *disjoint* from the query's label footprint, periodically
  one genuinely relevant call result.  The old analysis path re-runs
  every NFQ with a fresh matcher each round (O(document) per round);
  the incremental path screens each delta against per-query footprints
  and re-evaluates only dirtied queries, with matchers compiled once
  and descendant steps served by the :class:`LabelIndex`.  Both paths
  must detect the *same* relevant-call set every round; the incremental
  one must cut analysis time >= 5x at the largest size.

* **Engine equivalence** (the honest control): full end-to-end runs on
  the hotels and chains workloads with ``incremental`` off vs on must
  produce identical answers and an identical invocation *sequence*
  (service names and call sites, in order).  Here the gains are modest
  by design: the engine only invokes calls that are relevant to the
  query, and relevant results usually touch the query's own labels, so
  most splices legitimately dirty the family.  The cache still pays in
  plain (unlayered) NFQA, where every query is re-checked every round.
"""

import random
import time

from bench_harness import evaluate_workload, print_table, run_once
from repro.axml import LabelIndex
from repro.axml.builder import E, V
from repro.lazy.config import Strategy
from repro.lazy.incremental import RelevanceCache
from repro.lazy.relevance import build_nfqs
from repro.pattern.match import Matcher, MatchCounter
from repro.pattern.parse import parse_pattern
from repro.services.registry import ServiceCall
from repro.workloads.chains import build_chain_workload
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

SIZES = [100, 400, 1000, 2000]

# The paper query minus its value-join variables: $X/$Y match *any*
# value under a name/address, which would put a wildcard in every
# footprint and (correctly) mark every update as relevant.  Dropping
# the output variables keeps the footprint selective — the regime the
# incremental analysis is built for — without changing the spine.
DETECTION_QUERY_TEXT = (
    '/hotels/hotel[name="Best Western"][rating="5"]'
    '/nearby//restaurant[rating="5"]/name'
)

EVOLUTION_ROUNDS = 32
RELEVANT_EVERY = 8  # one relevant splice every K rounds
MUSEUM_BATCH = 2  # footprint-disjoint insertions per quiet round


def workload_of(n):
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=n,
            extra_hotels_via_service=0,
            target_hotel_count=12,
            seed=13,
        )
    )


def museum_tree(k):
    """An update the query's footprint provably ignores: ``museum`` is
    not a query label, and its ``name`` child fails the parent-label
    constraints (the query only tests names under hotel/restaurant)."""
    return E(
        "museum",
        E("name", V(f"Museum extra {k}")),
        E("address", V(f"{k} Evolution St.")),
    )


def detect_full(nfqs, document, counter):
    """The pre-incremental analysis pass: fresh matcher per query per
    round, full-document evaluation, no index."""
    found = set()
    for rq in nfqs:
        matcher = Matcher(rq.pattern, counter=counter)
        for node in matcher.evaluate(document).distinct_nodes():
            found.add(node.node_id)
    return found


def detect_incremental(nfqs, document, rcache, matchers):
    """The incremental pass: footprint-screened cache in front of
    compiled, index-assisted matchers; liveness filtered at read time."""

    def evaluate(rq):
        matcher = matchers[rq.target_uid]
        matcher.reset()
        return matcher.evaluate(document).distinct_nodes()

    found = set()
    for rq in nfqs:
        for call in rcache.retrieve(rq, evaluate):
            if document.contains(call):
                found.add(call.node_id)
    return found


def splice_relevant(document, bus, node_ids):
    """Invoke the lowest-id detected call and splice its result."""
    target = min(node_ids)
    call = next(c for c in document.function_nodes() if c.node_id == target)
    outcome = bus.invoke(
        ServiceCall(
            service=call.label,
            parameters=call.children,
            call_node_id=call.node_id,
        )
    )
    assert outcome.reply is not None
    document.replace_call(call, outcome.reply.forest)


def sweep():
    rows = []
    times = {}
    works = {}
    for n in SIZES:
        wl = workload_of(n)
        document = wl.make_document()
        bus = wl.make_bus()
        nfqs = build_nfqs(parse_pattern(DETECTION_QUERY_TEXT))

        index = LabelIndex(document)
        rcache = RelevanceCache(document)
        counter_full = MatchCounter()
        counter_inc = MatchCounter()
        matchers = {
            rq.target_uid: Matcher(rq.pattern, counter=counter_inc, index=index)
            for rq in nfqs
        }

        rng = random.Random(7)
        full_time = inc_time = 0.0
        for rnd in range(EVOLUTION_ROUNDS):
            start = time.perf_counter()
            full = detect_full(nfqs, document, counter_full)
            full_time += time.perf_counter() - start

            start = time.perf_counter()
            inc = detect_incremental(nfqs, document, rcache, matchers)
            inc_time += time.perf_counter() - start

            assert inc == full  # every round, on the same document state

            if rnd % RELEVANT_EVERY == 0 and full:
                splice_relevant(document, bus, full)
            else:
                nearbys = sorted(
                    index.data_nodes("nearby"), key=lambda node: node.node_id
                )
                for k in range(MUSEUM_BATCH):
                    document.insert_subtree(
                        rng.choice(nearbys), museum_tree(f"{rnd}.{k}")
                    )

        full_work = counter_full.can_checks + counter_full.candidates_visited
        inc_work = (
            counter_inc.can_checks
            + counter_inc.candidates_visited
            + counter_inc.index_candidates
        )
        rows.append(
            (
                n,
                document.stats().total_nodes,
                EVOLUTION_ROUNDS * len(nfqs),
                rcache.hits,
                rcache.reevaluations,
                full_time * 1000,
                inc_time * 1000,
                f"{full_time / max(inc_time, 1e-9):.1f}x",
            )
        )
        times[n] = (full_time, inc_time)
        works[n] = (full_work, inc_work)
        rcache.detach()
        index.detach()
    return rows, times, works


def test_e11_report(benchmark, capsys):
    rows, times, works = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E11: relevance detection under document evolution",
            [
                "n_hotels",
                "doc_nodes",
                "retrievals",
                "cache_hits",
                "reevals",
                "full_ms",
                "inc_ms",
                "speedup",
            ],
            rows,
            note="same detected call set asserted on every round",
        )
    # Most rounds are footprint-disjoint: the cache absorbs them.
    for row in rows:
        assert row[3] > row[4], "cache hits should dominate re-evaluations"
    # The headline: >= 5x analysis-time cut at the largest size, and the
    # (deterministic) matcher work shrinks at least as much.
    full_time, inc_time = times[SIZES[-1]]
    assert full_time / max(inc_time, 1e-9) >= 5.0
    full_work, inc_work = works[SIZES[-1]]
    assert full_work / max(inc_work, 1) >= 5.0
    # The gap grows with document size (per-round full work is O(n),
    # incremental work follows the delta).
    assert times[SIZES[-1]][0] / max(times[SIZES[-1]][1], 1e-9) > times[
        SIZES[0]
    ][0] / max(times[SIZES[0]][1], 1e-9)


# ---------------------------------------------------------------------------
# Engine equivalence: answers, invocation set *and order*
# ---------------------------------------------------------------------------

CHAIN_SHAPES = [(4, 8), (6, 16), (8, 24)]


def _invocations(bus):
    return [(r.service_name, r.call_node_id) for r in bus.log.records]


def _assert_identical(full, full_bus, inc, inc_bus):
    assert inc.value_rows() == full.value_rows()
    assert _invocations(inc_bus) == _invocations(full_bus)
    metrics = inc.metrics
    assert (
        metrics.relevance_cache_hits + metrics.queries_reevaluated
        == metrics.relevance_evaluations
    )


def engine_sweep():
    rows = []
    # Hotels, layered NFQA — the paper's engine, reported as the honest
    # control: invoked results overlap the query's footprint, so cache
    # hits are rare and the win is small.
    wl = build_hotels_workload(
        HotelsWorkloadParams(n_hotels=200, extra_hotels_via_service=40, seed=13)
    )
    for name, workload, kwargs in [
        ("hotels(200)", wl, dict(strategy=Strategy.LAZY_NFQ)),
    ] + [
        (
            f"chains({d}x{w})",
            build_chain_workload(depth=d, width=w, latency_s=0.0),
            dict(strategy=Strategy.LAZY_NFQ, use_layers=False, parallel=False),
        )
        for d, w in CHAIN_SHAPES
    ]:
        start = time.perf_counter()
        full, full_bus = evaluate_workload(workload, **kwargs)
        full_s = time.perf_counter() - start
        start = time.perf_counter()
        inc, inc_bus = evaluate_workload(workload, incremental=True, **kwargs)
        inc_s = time.perf_counter() - start
        _assert_identical(full, full_bus, inc, inc_bus)
        rows.append(
            (
                name,
                inc.metrics.calls_invoked,
                inc.metrics.relevance_evaluations,
                inc.metrics.relevance_cache_hits,
                inc.metrics.queries_reevaluated,
                inc.metrics.index_candidates,
                full_s * 1000,
                inc_s * 1000,
            )
        )
    return rows


def test_e11_engine_equivalence(benchmark, capsys):
    rows = run_once(benchmark, engine_sweep)
    with capsys.disabled():
        print_table(
            "E11: engine end-to-end, incremental off vs on",
            [
                "workload",
                "invoked",
                "rel-evals",
                "cache_hits",
                "reevals",
                "idx-cands",
                "full_ms",
                "inc_ms",
            ],
            rows,
            note="identical rows and invocation order asserted per workload",
        )
    # Plain NFQA re-checks every query every round: the cache must pay.
    chain_rows = [row for row in rows if row[0].startswith("chains")]
    assert chain_rows and all(row[3] > 0 for row in chain_rows)
