"""E14 — multi-tenant serving: batched rounds vs independent loops.

E13 made a *single* standing query cheap to refresh.  This experiment
measures what :class:`repro.serve.QueryServer` adds on top when many
subscribers share a document: the per-round cross-tenant batching step
that merges every due subscription's relevance family into **one**
:class:`~repro.pattern.multimatch.PatternGroup` pass per document, so
a round that invokes nothing costs one shared pass plus N maintained
serves instead of N independent engine runs.

* **Refresh latency under a traffic trace** (the headline sweep): a
  hotels document carries N standing queries through the E13 evolution
  trace — quiet insertions, periodically an extensional qualifying
  hotel or a fresh relevant service call.  Two twin worlds replay the
  same trace: N independent :class:`ContinuousQuery` loops refreshed in
  registration order, and one :class:`QueryServer` driven by
  :meth:`run_round`.  Latency is measured on a simulated serving clock
  (service latency from the bus plus measured compute): every
  subscriber goes due at the start of the round and is charged until
  its serve completes, so the p99 captures the subscriber at the back
  of the queue.  Every round both sides must produce identical value
  rows per subscriber and identical cumulative invocation logs; at 64
  subscribers and full size the server's p99 must be >= 3x better.

* **Noisy neighbour isolation**: a ``noisy`` tenant (registered first,
  so FIFO would serve it first — budgets, not priority, must do the
  isolating) hammers its own small document with a relevant call every
  round under a 1-invocation budget.  Victim tenants share the big
  document.  The noisy tenant must see typed ``DEFERRED(budget)``
  outcomes; the victims must see none, and their p99 must stay within
  10% of a run without the noisy tenant at all.

The tables land in ``BENCH_e14.json`` (see ``bench_harness``); the
headline assertions are re-checked *against the emitted file* so a
broken emitter fails the bench, not just downstream consumers.

Set ``E14_N`` (default 2000) to shrink the document for smoke runs —
the >= 3x and 10% assertions only arm at full size.
"""

import os
import random
import time

from bench_harness import print_table, read_bench_json, run_once
from bench_e13_answers import (
    QUERY_TEXTS,
    mutate_round,
    qualifying_nearby,
)
from repro.axml.builder import C, V
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.serve import QueryServer, RefreshStatus, TenantPolicy, quantile
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

N_HOTELS = int(os.environ.get("E14_N", "2000"))
FULL_SIZE = N_HOTELS >= 2000  # the >= 3x / 10% claims arm at full size
SUB_COUNTS = [16, 64]
TRACE_ROUNDS = 12


def serving_config():
    return EngineConfig.serving(strategy=Strategy.LAZY_NFQ)


def workload_of(n):
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=n,
            extra_hotels_via_service=0,
            target_hotel_count=12,
            seed=13,
        )
    )


def queries_of(k):
    texts = [QUERY_TEXTS[i % len(QUERY_TEXTS)] for i in range(k)]
    return [
        parse_pattern(text, name=f"sub-{i}") for i, text in enumerate(texts)
    ]


def invocations(bus):
    return [
        (r.service_name, r.call_node_id, r.fault) for r in bus.log.records
    ]


def ms(seconds):
    return seconds * 1000


# -- headline: batched rounds vs independent refresh loops -------------------


class LoopWorld:
    """The oracle deployment: independent standing queries on one
    shared engine, refreshed in registration order, timed on the same
    hybrid serving clock the server uses (bus clock + compute)."""

    def __init__(self, workload, queries):
        self.bus = workload.make_bus()
        self.engine = LazyQueryEvaluator(
            self.bus, schema=workload.schema, config=serving_config()
        )
        self.document = workload.make_document()
        self.loops = [
            ContinuousQuery(self.engine, query, self.document)
            for query in queries
        ]
        self.compute_s = 0.0

    def clock(self):
        return self.bus.clock_s + self.compute_s

    def refresh_round(self):
        """Refresh every loop once; all go due at the round start."""
        due = self.clock()
        latencies, rows = [], []
        for loop in self.loops:
            started = time.perf_counter()
            outcome = loop.refresh()
            self.compute_s += time.perf_counter() - started
            latencies.append(self.clock() - due)
            rows.append(set(outcome.value_rows()))
        return latencies, rows

    def close(self):
        for loop in self.loops:
            loop.close()


def latency_sweep():
    rows = []
    for k in SUB_COUNTS:
        workload = workload_of(N_HOTELS)
        queries = queries_of(k)
        loops = LoopWorld(workload, queries)

        server_bus = workload.make_bus()
        server = QueryServer(
            server_bus, schema=workload.schema, config=serving_config()
        )
        server_doc = workload.make_document()
        subs = [
            server.subscribe(query, server_doc, name=query.name)
            for query in queries
        ]
        # Eager materialisation (untimed) must already agree.
        assert invocations(loops.bus) == invocations(server_bus)

        rng = random.Random(7)
        loop_lat, server_lat = [], []
        statuses = {status: 0 for status in RefreshStatus}
        for rnd in range(TRACE_ROUNDS):
            mutate_round(rnd, rng, (loops.document, server_doc))
            latencies, expected = loops.refresh_round()
            loop_lat.extend(latencies)
            report = server.run_round()
            for outcome in report.outcomes:
                statuses[outcome.status] += 1
                if outcome.served:
                    server_lat.append(outcome.latency_s)
            # Identical answers per subscriber, identical cumulative
            # invocation logs — the batching must be unobservable.
            assert [set(sub.rows) for sub in subs] == expected, (k, rnd)
            assert invocations(loops.bus) == invocations(server_bus), (
                k,
                rnd,
            )
        assert len(server_lat) == len(loop_lat), "every sub served per round"
        rows.append(
            (
                k,
                TRACE_ROUNDS,
                statuses[RefreshStatus.EVALUATED],
                statuses[RefreshStatus.MAINTAINED]
                + statuses[RefreshStatus.SKIPPED],
                ms(quantile(loop_lat, 0.5)),
                ms(quantile(loop_lat, 0.99)),
                ms(quantile(server_lat, 0.5)),
                ms(quantile(server_lat, 0.99)),
                round(
                    quantile(loop_lat, 0.99)
                    / max(quantile(server_lat, 0.99), 1e-9),
                    2,
                ),
            )
        )
        loops.close()
        server.close()
    return rows


# -- noisy neighbour isolation ----------------------------------------------

VICTIM_TENANTS = ["team-a", "team-b", "team-c"]
VICTIM_SUBS_EACH = 16
NOISY_SUBS = 8


def noisy_workload():
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=8,
            extra_hotels_via_service=0,
            target_hotel_count=4,
            seed=14,
        )
    )


def noisy_run(with_noisy):
    """One serving run over the victim trace; optionally a noisy tenant
    on its own documents, registered and subscribed *first*."""
    workload = workload_of(N_HOTELS)
    server = QueryServer(
        workload.make_bus(), schema=workload.schema, config=serving_config()
    )
    noisy_docs = []
    if with_noisy:
        server.register_tenant(
            "noisy", TenantPolicy(invocation_budget=1)
        )
        # One small document per noisy subscription: each round every
        # one of them grows a relevant call, so the tenant genuinely
        # wants NOISY_SUBS engine runs per round against a budget of 1
        # invocation — a run for one document cannot quiet the others.
        noisy_wl = noisy_workload()
        for i in range(NOISY_SUBS):
            doc = noisy_wl.make_document()
            noisy_docs.append(doc)
            server.subscribe(
                parse_pattern(
                    QUERY_TEXTS[i % len(QUERY_TEXTS)], name=f"noisy-{i}"
                ),
                doc,
                tenant="noisy",
            )
    victim_doc = workload.make_document()
    queries = queries_of(VICTIM_SUBS_EACH * len(VICTIM_TENANTS))
    for i, query in enumerate(queries):
        server.subscribe(
            query,
            victim_doc,
            tenant=VICTIM_TENANTS[i % len(VICTIM_TENANTS)],
            name=f"victim-{i}",
        )

    rng = random.Random(7)
    victim_lat = []
    deferred = {"noisy": 0, "victims": 0}
    for rnd in range(TRACE_ROUNDS):
        mutate_round(rnd, rng, (victim_doc,))
        for doc in noisy_docs:
            # The noisy tenant wants an engine run per document per round.
            spot = qualifying_nearby(doc)
            if spot is not None:
                doc.insert_subtree(
                    spot, C("getNearbyRestos", V("1 Madison Av."))
                )
        report = server.run_round()
        for outcome in report.outcomes:
            if outcome.tenant == "noisy":
                if outcome.status is RefreshStatus.DEFERRED:
                    deferred["noisy"] += 1
            else:
                if outcome.status is RefreshStatus.DEFERRED:
                    deferred["victims"] += 1
                elif outcome.served:
                    victim_lat.append(outcome.latency_s)
    server.close()
    return victim_lat, deferred


def isolation_sweep():
    baseline_lat, baseline_deferred = noisy_run(with_noisy=False)
    noisy_lat, noisy_deferred = noisy_run(with_noisy=True)
    rows = [
        (
            "victims-only",
            len(baseline_lat),
            ms(quantile(baseline_lat, 0.5)),
            ms(quantile(baseline_lat, 0.99)),
            baseline_deferred["victims"],
            0,
        ),
        (
            "with-noisy",
            len(noisy_lat),
            ms(quantile(noisy_lat, 0.5)),
            ms(quantile(noisy_lat, 0.99)),
            noisy_deferred["victims"],
            noisy_deferred["noisy"],
        ),
    ]
    return rows


# -- the bench ---------------------------------------------------------------


def test_e14_serving_latency(benchmark, capsys):
    latency_rows, isolation_rows = run_once(
        benchmark, lambda: (latency_sweep(), isolation_sweep())
    )
    with capsys.disabled():
        print_table(
            "E14: batched serving rounds vs independent refresh loops"
            f" (hotels({N_HOTELS}))",
            [
                "subs",
                "rounds",
                "evaluated",
                "served_cheap",
                "loops_p50_ms",
                "loops_p99_ms",
                "server_p50_ms",
                "server_p99_ms",
                "p99_speedup",
            ],
            latency_rows,
            note="identical rows and invocation order asserted per sub per round",
            bench="e14",
        )
        print_table(
            "E14: noisy-neighbour isolation under per-tenant budgets"
            f" (hotels({N_HOTELS}))",
            [
                "run",
                "victim_serves",
                "victim_p50_ms",
                "victim_p99_ms",
                "victim_deferred",
                "noisy_deferred",
            ],
            isolation_rows,
            note="noisy tenant registered first; budget=1 engine run per round",
            bench="e14",
        )
    # The shared pass must actually fire: most serves on the big
    # document avoid the engine entirely.
    for row in latency_rows:
        assert row[3] > 0, "rounds should serve maintained answers"

    # The headline, re-checked against the *emitted* JSON so a broken
    # emitter fails here and not in some downstream consumer.
    payload = read_bench_json("e14")
    latency_table = next(
        t for name, t in payload["tables"].items() if "refresh loops" in name
    )
    speedup_col = latency_table["headers"].index("p99_speedup")
    k64 = next(r for r in latency_table["rows"] if r[0] == 64)
    if FULL_SIZE:
        assert k64[speedup_col] >= 3.0, k64
    else:
        # Smoke sizes still require batching to win outright.
        assert k64[speedup_col] > 1.0, k64

    isolation_table = next(
        t for name, t in payload["tables"].items() if "noisy-neighbour" in name
    )
    headers = isolation_table["headers"]
    by_run = {r[0]: r for r in isolation_table["rows"]}
    p99 = headers.index("victim_p99_ms")
    assert by_run["with-noisy"][headers.index("noisy_deferred")] > 0
    assert by_run["with-noisy"][headers.index("victim_deferred")] == 0
    assert by_run["victims-only"][headers.index("victim_deferred")] == 0
    if FULL_SIZE:
        # Budget exhaustion degrades only the noisy tenant: the
        # victims' tail stays within 10% of the undisturbed run.
        assert (
            by_run["with-noisy"][p99] <= by_run["victims-only"][p99] * 1.10
        ), (by_run["victims-only"][p99], by_run["with-noisy"][p99])
