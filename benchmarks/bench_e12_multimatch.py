"""E12 — shared multi-query matching with guide-driven projection.

Paper claim (Section 5, Figure 5): one user query spawns a whole
*family* of relevance queries — one NFQ per function-reachable node —
and the engine re-runs the family every round.  Evaluating the members
one by one repeats almost all boolean work ``|family|`` times, because
the NFQs share the spine and most condition branches.  This experiment
regenerates the case for :class:`repro.pattern.multimatch.PatternGroup`:
the family compiled once into a merged canonical-class structure and
answered in **one shared pass** per round, with a document projection
set (merged label footprint + ancestors) pruning subtrees no member
can match.

* **Analysis under evolution** (the headline sweep, E11's protocol): a
  hotels document receives a stream of updates — mostly insertions
  disjoint from the family's footprint, periodically one genuinely
  relevant call result.  The per-query path runs a fresh matcher per
  NFQ per round; the shared path keeps the family in a
  :class:`RelevanceCache` maintained by splice deltas and resolves all
  misses of a round in one ``PatternGroup`` pass.  Both paths must
  detect the *same* relevant-call set every round; at 16 concurrent
  relevance queries and full size the shared path must cut analysis
  time and matcher work >= 5x.

* **Single shared pass** (no cache effects): one group pass vs. 16
  fresh per-query evaluations on a static document.  The win here is
  bounded by how much of the family is genuinely shared (the NFQs do
  differ around their focused nodes) — reported honestly, asserted
  only to be a win, not the headline multiple.

* **Engine equivalence** (the honest control): end-to-end runs with
  ``shared_matching`` off vs. on must produce identical answers and an
  identical invocation *sequence*; the shared runs must actually take
  group passes.

The tables land in ``BENCH_e12.json`` (see ``bench_harness``); the
headline assertions are re-checked *against the emitted file* so a
broken emitter fails the bench, not just downstream consumers.

Set ``E12_N`` (default 2000) to shrink the document for smoke runs —
the >= 5x assertion only arms at full size.
"""

import os
import random
import time

from bench_harness import (
    evaluate_workload,
    print_table,
    read_bench_json,
    run_once,
)
from repro.axml import LabelIndex
from repro.axml.builder import E, V
from repro.lazy.config import Strategy
from repro.lazy.incremental import RelevanceCache
from repro.lazy.relevance import NFQBuilder
from repro.pattern.match import Matcher, MatchCounter
from repro.pattern.multimatch import PatternGroup
from repro.pattern.parse import parse_pattern
from repro.services.registry import ServiceCall
from repro.workloads.chains import build_chain_workload
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

N_HOTELS = int(os.environ.get("E12_N", "2000"))
FULL_SIZE = N_HOTELS >= 2000  # the >= 5x claim is asserted at full size
QUERY_COUNTS = [2, 4, 8, 16]

# A wide, variable-free query: 16 function-reachable positions, so
# NFQBuilder yields (at least) 16 NFQs sharing the spine and most
# conditions.  Variable-free keeps every footprint selective and the
# projection summary wildcard-free — the regime shared matching and
# projection are built for.
FAMILY_QUERY_TEXT = (
    '/hotels/hotel[name="Best Western"][address][rating="5"]'
    "/nearby[museum[name][address]]"
    '//restaurant[name][address][rating="5"]/name'
)

EVOLUTION_ROUNDS = 24
RELEVANT_EVERY = 8  # one relevant splice every K rounds
QUIET_BATCH = 2  # footprint-disjoint insertions per quiet round


def workload_of(n):
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=n,
            extra_hotels_via_service=0,
            target_hotel_count=12,
            seed=13,
        )
    )


def family_of(k):
    """The first *k* NFQs of the family, undeduplicated (the engine's
    layer view can hold structurally-equal queries for distinct
    targets; the group must cope, and canonicalization makes the
    duplicates nearly free)."""
    nfqs = NFQBuilder(parse_pattern(FAMILY_QUERY_TEXT)).build_all(dedupe=False)
    assert len(nfqs) >= QUERY_COUNTS[-1], len(nfqs)
    return nfqs[:k]


def parking_tree(k):
    """An update every member footprint provably ignores: neither
    ``parking`` nor ``spot`` is a query label (``museum``/``name``/
    ``address`` would be projection sources here, unlike E11)."""
    return E("parking", E("spot", V(f"Level {k}")))


def detect_per_query(nfqs, document, counter):
    """The engine's pre-shared analysis path: fresh matcher per query
    per round, full-document evaluation, no cache, no index."""
    found = set()
    for rq in nfqs:
        matcher = Matcher(rq.pattern, counter=counter)
        for node in matcher.evaluate(document).distinct_nodes():
            found.add(node.node_id)
    return found


def detect_shared(nfqs, document, rcache, group):
    """The shared path as the engine composes it: footprint-screened
    cache in front, every miss of the round resolved by *one* group
    pass, liveness filtered at read time."""
    calls_by_target = {}
    fresh = []
    for rq in nfqs:
        calls = rcache.lookup(rq)
        if calls is None:
            fresh.append(rq)
        else:
            calls_by_target[rq.target_uid] = calls
    if fresh:
        result = group.evaluate(
            document, keys=[rq.target_uid for rq in fresh]
        )
        for rq in fresh:
            calls = list(result.match_sets[rq.target_uid].distinct_nodes())
            rcache.store(rq, calls)
            calls_by_target[rq.target_uid] = calls
    found = set()
    for calls in calls_by_target.values():
        for call in calls:
            if document.contains(call):
                found.add(call.node_id)
    return found


def splice_relevant(document, bus, node_ids):
    """Invoke the lowest-id detected call and splice its result."""
    target = min(node_ids)
    call = next(c for c in document.function_nodes() if c.node_id == target)
    outcome = bus.invoke(
        ServiceCall(
            service=call.label,
            parameters=call.children,
            call_node_id=call.node_id,
        )
    )
    assert outcome.reply is not None
    document.replace_call(call, outcome.reply.forest)


def evolution_sweep():
    rows = []
    for k in QUERY_COUNTS:
        wl = workload_of(N_HOTELS)
        document = wl.make_document()
        bus = wl.make_bus()
        nfqs = family_of(k)

        index = LabelIndex(document)
        rcache = RelevanceCache(document)
        counter_pq = MatchCounter()
        counter_sh = MatchCounter()
        group = PatternGroup(
            {rq.target_uid: rq.pattern for rq in nfqs},
            counter=counter_sh,
            index=index,
        )

        rng = random.Random(7)
        pq_time = sh_time = 0.0
        projected_passes = skipped = 0
        for rnd in range(EVOLUTION_ROUNDS):
            start = time.perf_counter()
            per_query = detect_per_query(nfqs, document, counter_pq)
            pq_time += time.perf_counter() - start

            start = time.perf_counter()
            shared = detect_shared(nfqs, document, rcache, group)
            sh_time += time.perf_counter() - start

            # Identical answers, every round, on the same document state.
            assert shared == per_query

            if rnd % RELEVANT_EVERY == 0 and per_query:
                splice_relevant(document, bus, per_query)
            else:
                nearbys = sorted(
                    index.data_nodes("nearby"), key=lambda node: node.node_id
                )
                for j in range(QUIET_BATCH):
                    document.insert_subtree(
                        rng.choice(nearbys), parking_tree(f"{rnd}.{j}")
                    )

        pq_work = counter_pq.can_checks + counter_pq.candidates_visited
        sh_work = (
            counter_sh.can_checks
            + counter_sh.candidates_visited
            + counter_sh.index_candidates
        )
        family_nodes = sum(len(list(rq.pattern.nodes())) for rq in nfqs)
        rows.append(
            (
                k,
                family_nodes,
                group.canonical_classes,
                rcache.hits,
                rcache.reevaluations,
                rcache.group_screens,
                pq_time * 1000,
                sh_time * 1000,
                round(pq_time / max(sh_time, 1e-9), 2),
                round(pq_work / max(sh_work, 1), 2),
            )
        )
        rcache.detach()
        index.detach()
    return rows


def test_e12_evolution(benchmark, capsys):
    rows = run_once(benchmark, evolution_sweep)
    with capsys.disabled():
        print_table(
            "E12: shared vs per-query relevance analysis under evolution"
            f" (hotels({N_HOTELS}))",
            [
                "queries",
                "nodes",
                "classes",
                "cache_hits",
                "group_evals",
                "screens",
                "per_query_ms",
                "shared_ms",
                "speedup",
                "work_cut",
            ],
            rows,
            note="same detected call set asserted on every round",
        )
    # Canonicalization must actually collapse the family: at k=16 the
    # ~200 member nodes must intern into at most half as many classes.
    by_k = {row[0]: row for row in rows}
    assert by_k[16][2] * 2 <= by_k[16][1], by_k[16]
    # Quiet rounds are absorbed by the merged-footprint screen.
    for row in rows:
        assert row[5] > 0, "group-level screens should fire on quiet rounds"
    # The headline, re-checked against the *emitted* JSON so a broken
    # emitter fails here and not in some downstream consumer.
    payload = read_bench_json("e12")
    table = next(
        t for name, t in payload["tables"].items() if "under evolution" in name
    )
    speedup_col = table["headers"].index("speedup")
    work_col = table["headers"].index("work_cut")
    k16 = next(r for r in table["rows"] if r[0] == 16)
    if FULL_SIZE:
        assert k16[speedup_col] >= 5.0, k16
        assert k16[work_col] >= 5.0, k16
        # The gap widens with family size: sharing pays more at k=16
        # than at k=2.
        k2 = next(r for r in table["rows"] if r[0] == 2)
        assert k16[speedup_col] > k2[speedup_col]
    else:
        # Smoke sizes still require the shared path to win on work.
        assert k16[work_col] > 1.0, k16


def single_pass_sweep():
    wl = workload_of(N_HOTELS)
    document = wl.make_document()
    rows = []
    for k in QUERY_COUNTS:
        nfqs = family_of(k)
        counter_pq = MatchCounter()
        start = time.perf_counter()
        for rq in nfqs:
            Matcher(rq.pattern, counter=counter_pq).evaluate(document)
        pq_time = time.perf_counter() - start

        index = LabelIndex(document)
        group = PatternGroup(
            {rq.target_uid: rq.pattern for rq in nfqs}, index=index
        )
        start = time.perf_counter()
        result = group.evaluate(document)
        sh_time = time.perf_counter() - start
        index.detach()

        # Oracle parity: the shared pass returns exactly the per-query
        # walker's answers, member by member.
        for rq in nfqs:
            oracle = Matcher(rq.pattern).evaluate(document)
            shared_rows = {
                (tuple(n.node_id for n in row.nodes), row.bindings)
                for row in result.match_sets[rq.target_uid].rows
            }
            oracle_rows = {
                (tuple(n.node_id for n in row.nodes), row.bindings)
                for row in oracle.rows
            }
            assert shared_rows == oracle_rows, rq.target_uid

        rows.append(
            (
                k,
                group.canonical_classes,
                result.projected,
                result.projection_size,
                result.skipped_subtrees,
                result.candidate_reuses,
                pq_time * 1000,
                sh_time * 1000,
                round(pq_time / max(sh_time, 1e-9), 2),
            )
        )
    return rows


def test_e12_single_pass(benchmark, capsys):
    rows = run_once(benchmark, single_pass_sweep)
    with capsys.disabled():
        print_table(
            f"E12: one shared pass vs per-query (static hotels({N_HOTELS}))",
            [
                "queries",
                "classes",
                "projected",
                "proj_nodes",
                "pruned",
                "cand_reuse",
                "per_query_ms",
                "one_pass_ms",
                "speedup",
            ],
            rows,
            note="per-member rows asserted identical to the oracle walker",
        )
    by_k = {row[0]: row for row in rows}
    # The family is variable-free, so projection must be in force.
    assert all(row[2] for row in rows)
    if FULL_SIZE:
        # Without any cache effects the win is the sharing itself —
        # bounded by the family's genuine per-member differences.
        assert by_k[16][8] >= 1.5, by_k[16]


# ---------------------------------------------------------------------------
# Engine equivalence: answers, invocation set *and order*
# ---------------------------------------------------------------------------

CHAIN_SHAPES = [(4, 8), (6, 16)]


def _invocations(bus):
    return [(r.service_name, r.call_node_id) for r in bus.log.records]


def engine_sweep():
    rows = []
    wl = build_hotels_workload(
        HotelsWorkloadParams(n_hotels=200, extra_hotels_via_service=40, seed=13)
    )
    cases = [
        ("hotels(200)", wl, dict(strategy=Strategy.LAZY_NFQ)),
        (
            "hotels+inc",
            wl,
            dict(strategy=Strategy.LAZY_NFQ, incremental=True),
        ),
        (
            "hotels+guide",
            wl,
            dict(strategy=Strategy.LAZY_NFQ, use_fguide=True),
        ),
    ] + [
        (
            f"chains({d}x{w})",
            build_chain_workload(depth=d, width=w, latency_s=0.0),
            dict(strategy=Strategy.LAZY_NFQ, use_layers=False, parallel=False),
        )
        for d, w in CHAIN_SHAPES
    ]
    for name, workload, kwargs in cases:
        base, base_bus = evaluate_workload(workload, **kwargs)
        shared, shared_bus = evaluate_workload(
            workload, shared_matching=True, **kwargs
        )
        assert shared.value_rows() == base.value_rows()
        assert _invocations(shared_bus) == _invocations(base_bus)
        metrics = shared.metrics
        assert metrics.group_passes > 0, name
        rows.append(
            (
                name,
                metrics.calls_invoked,
                metrics.relevance_evaluations,
                metrics.group_passes,
                metrics.group_pass_nodes_visited,
                metrics.projection_skipped_subtrees,
            )
        )
    return rows


def test_e12_engine_equivalence(benchmark, capsys):
    rows = run_once(benchmark, engine_sweep)
    with capsys.disabled():
        print_table(
            "E12: engine end-to-end, shared matching off vs on",
            [
                "workload",
                "invoked",
                "rel-evals",
                "group_passes",
                "group_visited",
                "proj_pruned",
            ],
            rows,
            note="identical rows and invocation order asserted per workload",
        )
    # The emitted JSON must exist and parse with all three tables.
    payload = read_bench_json("e12")
    assert any("under evolution" in name for name in payload["tables"])
    assert any("one shared pass" in name for name in payload["tables"])
    assert any("end-to-end" in name for name in payload["tables"])
