"""E1 — Naive vs lazy evaluation time, sweeping document size.

Paper claim (abstract / Section 1): "compared to the naive approach,
the pruning of irrelevant service calls may reduce the overall query
evaluation time by orders of magnitude."

Regenerates: total evaluation time (simulated service time + measured
analysis time) and invocation counts for the Figure 4 query over
``hotels(n)`` documents, for the naive, NFQ and typed-NFQ strategies.
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

SIZES = [10, 25, 50, 100, 200]
STRATEGIES = [
    ("naive", dict(strategy=Strategy.NAIVE)),
    ("lazy-nfq", dict(strategy=Strategy.LAZY_NFQ)),
    ("lazy-nfq-typed", dict(strategy=Strategy.LAZY_NFQ_TYPED)),
]


def workload_of(n):
    # Constant selectivity: the query targets the same 3 hotels however
    # large the document grows — the regime where laziness pays most
    # (cf. the intro's going-out example).
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=n,
            extra_hotels_via_service=2,
            target_hotel_count=3,
        )
    )


def sweep():
    rows = []
    for n in SIZES:
        wl = workload_of(n)
        per_strategy = {}
        for name, cfg in STRATEGIES:
            outcome, _ = evaluate_workload(wl, **cfg)
            per_strategy[name] = outcome.metrics
        naive = per_strategy["naive"]
        for name, _ in STRATEGIES:
            m = per_strategy[name]
            rows.append(
                (
                    n,
                    name,
                    m.calls_invoked,
                    m.total_time_s,
                    m.total_time_parallel_s,
                    f"{naive.total_time_s / max(m.total_time_s, 1e-9):.1f}x",
                )
            )
    return rows


def test_e1_report(benchmark, capsys):
    rows = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E1: naive vs lazy (hotels(n), selective query)",
            ["n_hotels", "strategy", "calls", "time_s", "time_par_s", "speedup"],
            rows,
            note="time_s = simulated service time + measured analysis time",
        )
    # Qualitative claim: lazy wins everywhere and the gap grows with n.
    by_key = {(r[0], r[1]): r for r in rows}
    for n in SIZES:
        assert by_key[(n, "lazy-nfq")][3] < by_key[(n, "naive")][3]
        assert by_key[(n, "lazy-nfq-typed")][2] <= by_key[(n, "lazy-nfq")][2]
    small_gap = by_key[(SIZES[0], "naive")][3] / by_key[(SIZES[0], "lazy-nfq")][3]
    big_gap = by_key[(SIZES[-1], "naive")][3] / by_key[(SIZES[-1], "lazy-nfq")][3]
    assert big_gap > small_gap


@pytest.mark.parametrize(
    "name,cfg", STRATEGIES, ids=[name for name, _ in STRATEGIES]
)
def test_e1_benchmark(benchmark, name, cfg):
    wl = workload_of(50)

    def run():
        outcome, _ = evaluate_workload(wl, **cfg)
        return outcome.metrics.calls_invoked

    benchmark(run)
