"""E13 — delta-driven answer maintenance for continuous queries.

The continuous-query story so far (E11/E12) made the *relevance* side
of a refresh cheap; the *answer* side still re-ran the engine — and the
final full-document match — from scratch on every refresh.  This
experiment regenerates the case for :class:`repro.lazy.answers
.AnswerCache`: the standing query's snapshot result materialized per
depth-1 subtree, splices screened against the query's label footprint,
dirty subtrees re-matched in place, and — when every delta since the
last refresh screens clean against the family's guard footprint — the
engine skipped outright.

* **Refresh latency under evolution** (the headline sweep): a hotels
  document receives a stream of updates — mostly insertions disjoint
  from every query's footprint, periodically one genuinely relevant
  mutation (a new qualifying hotel, or a fresh ``getNearbyRestos``
  call that the next refresh must invoke).  Two twin worlds carry the
  same 16 standing queries through the same mutation sequence: one
  refreshes by full re-evaluation (``maintain_answers`` off — the
  differential oracle), one by answer maintenance.  Every round, every
  query, the two sides must produce identical value rows, and the
  cumulative invocation logs (service, call site, fault — in order)
  must be identical; at 16 queries and full size the maintained side
  must cut total refresh time >= 3x.

The tables land in ``BENCH_e13.json`` (see ``bench_harness``); the
headline assertion is re-checked *against the emitted file* so a broken
emitter fails the bench, not just downstream consumers.

Set ``E13_N`` (default 2000) to shrink the document for smoke runs —
the >= 3x assertion only arms at full size.
"""

import os
import random
import time

from bench_harness import print_table, read_bench_json, run_once
from repro.axml.builder import C, E, V
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

N_HOTELS = int(os.environ.get("E13_N", "2000"))
FULL_SIZE = N_HOTELS >= 2000  # the >= 3x claim is asserted at full size
QUERY_COUNTS = [4, 8, 16]

# Sixteen distinct standing queries over the shared document.  All of
# them are single-root-child patterns (root ``hotels``, one ``hotel``
# chain below it), the regime where maintenance decomposes the answer
# by depth-1 subtree; they differ in depth, predicates and result
# position so their footprints and NFQ families genuinely differ.
QUERY_TEXTS = [
    '/hotels/hotel[name="Best Western"][rating="5"]'
    '/nearby//restaurant[rating="5"]/name/$X',
    '/hotels/hotel[name="Best Western"][rating="5"]'
    '/nearby//restaurant[rating="5"]/address/$X',
    '/hotels/hotel[name="Best Western"]/nearby/museum/name/$X',
    '/hotels/hotel[rating="5"]/name/$X',
    '/hotels/hotel[name="Best Western"]/address/$X',
    '/hotels/hotel/nearby/restaurant[rating="4"]/name/$X',
    '/hotels/hotel[rating="5"]/nearby//museum/address/$X',
    '/hotels/hotel/nearby/restaurant[name][address]/rating/$X',
]


def queries_of(k):
    texts = [QUERY_TEXTS[i % len(QUERY_TEXTS)] for i in range(k)]
    return [
        parse_pattern(text, name=f"standing-{i}")
        for i, text in enumerate(texts)
    ]


EVOLUTION_ROUNDS = 12
RELEVANT_EVERY = 4  # one relevant mutation every K rounds
QUIET_BATCH = 2  # footprint-disjoint insertions per quiet round


def workload_of(n):
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=n,
            extra_hotels_via_service=0,
            target_hotel_count=12,
            seed=13,
        )
    )


def parking_tree(tag):
    """An update every standing query's guard provably ignores:
    neither ``parking`` nor ``spot`` appears in any footprint."""
    return E("parking", E("spot", V(f"Level {tag}")))


def fresh_hotel(tag):
    """A fully-extensional qualifying hotel: rows of most queries must
    change, so the round exercises the dirty-scope resplice path."""
    return E(
        "hotel",
        E("name", V("Best Western")),
        E("address", V(f"{tag} New Av.")),
        E("rating", V("5")),
        E(
            "nearby",
            E(
                "restaurant",
                E("name", V(f"Cafe {tag}")),
                E("address", V(f"{tag} New Av.")),
                E("rating", V("5")),
            ),
            E("museum", E("name", V(f"Gallery {tag}")), E("address", V("53 St."))),
        ),
    )


def nearby_nodes(document):
    return [
        node
        for node in document.root.iter_subtree()
        if node.is_element and node.label == "nearby"
    ]


def qualifying_nearby(document):
    """The ``nearby`` of a materialised target hotel (name and rating
    extensional and qualifying), so an inserted call is relevant."""
    for hotel in document.root.children:
        if not (hotel.is_element and hotel.label == "hotel"):
            continue
        fields = {c.label: c for c in hotel.children if c.is_element}
        name = fields.get("name")
        rating = fields.get("rating")
        nearby = fields.get("nearby")
        if name is None or rating is None or nearby is None:
            continue
        if not (name.children and name.children[0].label == "Best Western"):
            continue
        if rating.children and rating.children[0].label == "5":
            return nearby
    return None


def mutate_round(rnd, rng, documents):
    """One evolution round, applied identically to both twin documents.

    Positions are chosen by index on the first document and replayed on
    the second — the twins are built and refreshed identically, so the
    index denotes the same spot in both.
    """
    if rnd % RELEVANT_EVERY == 0:
        if rnd % (2 * RELEVANT_EVERY) == 0:
            for document in documents:
                document.insert_subtree(document.root, fresh_hotel(rnd))
        else:
            spots = [qualifying_nearby(document) for document in documents]
            if all(spot is not None for spot in spots):
                for document, spot in zip(documents, spots):
                    document.insert_subtree(
                        spot, C("getNearbyRestos", V("1 Madison Av."))
                    )
            else:  # pragma: no cover - tiny smoke documents only
                for document in documents:
                    document.insert_subtree(document.root, fresh_hotel(rnd))
        return
    choices = [
        rng.randrange(len(nearby_nodes(documents[0])))
        for _ in range(QUIET_BATCH)
    ]
    for document in documents:
        spots = nearby_nodes(document)
        for j, index in enumerate(choices):
            document.insert_subtree(spots[index], parking_tree(f"{rnd}.{j}"))


def invocations(bus):
    return [
        (r.service_name, r.call_node_id, r.fault) for r in bus.log.records
    ]


def standing_set(workload, queries, maintain):
    bus = workload.make_bus()
    engine = LazyQueryEvaluator(
        bus,
        schema=workload.schema,
        config=EngineConfig(
            strategy=Strategy.LAZY_NFQ, maintain_answers=maintain
        ),
    )
    document = workload.make_document()
    standings = [
        ContinuousQuery(engine, query, document) for query in queries
    ]
    return document, bus, standings


def refresh_all(standings):
    start = time.perf_counter()
    outcomes = [standing.refresh() for standing in standings]
    return time.perf_counter() - start, outcomes


def evolution_sweep():
    rows = []
    for k in QUERY_COUNTS:
        wl = workload_of(N_HOTELS)
        queries = queries_of(k)
        # Twin worlds: same documents, same services, same standing
        # queries; only the refresh machinery differs.  The eager
        # construction materialises both identically (untimed).
        full_doc, full_bus, full_set = standing_set(wl, queries, False)
        kept_doc, kept_bus, kept_set = standing_set(wl, queries, True)
        assert invocations(full_bus) == invocations(kept_bus)

        rng = random.Random(7)
        full_time = kept_time = 0.0
        relevant_rounds = 0
        for rnd in range(EVOLUTION_ROUNDS):
            if rnd % RELEVANT_EVERY == 0:
                relevant_rounds += 1
            mutate_round(rnd, rng, (full_doc, kept_doc))
            dt, full_outcomes = refresh_all(full_set)
            full_time += dt
            dt, kept_outcomes = refresh_all(kept_set)
            kept_time += dt
            # Identical answers, every query, every round — and the
            # cumulative invocation logs must agree call by call.
            for i, (full, kept) in enumerate(
                zip(full_outcomes, kept_outcomes)
            ):
                assert kept.value_rows() == full.value_rows(), (k, rnd, i)
            assert invocations(full_bus) == invocations(kept_bus), (k, rnd)

        skips = sum(s.engine_skips for s in kept_set)
        caches = [s.answer_cache for s in kept_set]
        rows.append(
            (
                k,
                EVOLUTION_ROUNDS,
                relevant_rounds,
                skips,
                sum(c.hits for c in caches),
                sum(c.scope_rematches for c in caches),
                sum(c.rows_added + c.rows_retracted for c in caches),
                full_time * 1000,
                kept_time * 1000,
                round(full_time / max(kept_time, 1e-9), 2),
            )
        )
        for standing in full_set + kept_set:
            standing.close()
    return rows


def test_e13_refresh_latency(benchmark, capsys):
    rows = run_once(benchmark, evolution_sweep)
    with capsys.disabled():
        print_table(
            "E13: maintained vs full-reevaluation refresh under evolution"
            f" (hotels({N_HOTELS}))",
            [
                "queries",
                "rounds",
                "relevant",
                "engine_skips",
                "row_hits",
                "scope_rematches",
                "rows_respliced",
                "full_ms",
                "maintained_ms",
                "speedup",
            ],
            rows,
            note="identical rows and invocation order asserted per query per round",
        )
    for row in rows:
        # Quiet rounds must be absorbed without running the engine, and
        # relevant rounds must exercise the resplice path.
        assert row[3] > 0, "screened rounds should skip the engine"
        assert row[5] > 0, "relevant rounds should re-match dirty scopes"
    # The headline, re-checked against the *emitted* JSON so a broken
    # emitter fails here and not in some downstream consumer.
    payload = read_bench_json("e13")
    table = next(
        t for name, t in payload["tables"].items() if "under evolution" in name
    )
    speedup_col = table["headers"].index("speedup")
    k16 = next(r for r in table["rows"] if r[0] == 16)
    if FULL_SIZE:
        assert k16[speedup_col] >= 3.0, k16
        # The gap widens with the standing-query count: maintenance
        # pays more at 16 queries than at 4.
        k4 = next(r for r in table["rows"] if r[0] == 4)
        assert k16[speedup_col] >= k4[speedup_col] * 0.8, (k4, k16)
    else:
        # Smoke sizes still require maintenance to win outright.
        assert k16[speedup_col] > 1.0, k16
