"""E7 (ablation) — containment-based multi-query de-duplication.

Paper note (Section 4.1): relevance queries are handed to a query
processor which can "eliminate redundant queries using containment
checking as in [20]"; "techniques for multi-query optimization are
essential to avoid performance penalties".

Regenerates: the number of relevance queries before/after containment
de-duplication, and the resulting evaluation effort, for queries of
growing width and depth.
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.lazy.relevance import build_nfqs, linear_path_queries
from repro.pattern.parse import parse_pattern
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload
from repro.workloads.queries import hotels_broad_query

QUERIES = [
    ("paper", None),  # filled with the workload's own query
    ("broad", hotels_broad_query()),
    (
        "wide",
        parse_pattern(
            '/hotels/hotel[name="Best Western"][address][rating]'
            "/nearby//restaurant[name][address][rating]"
        ),
    ),
    (
        "deep-descendants",
        parse_pattern("/hotels//hotel//nearby//restaurant//name"),
    ),
]


def sweep():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=30, seed=19))
    rows = []
    effort = {}
    for qname, query in QUERIES:
        query = query or wl.query
        lpq_all = linear_path_queries(query, dedupe=False)
        lpq_dedup = linear_path_queries(query, dedupe=True)
        from repro.lazy.relevance import NFQBuilder

        nfq_all = NFQBuilder(query).build_all(dedupe=False)
        nfq_dedup = NFQBuilder(query).build_all(dedupe=True)
        for dedupe in (False, True):
            outcome, _ = evaluate_workload(
                wl,
                query=query,
                strategy=Strategy.LAZY_NFQ,
                dedupe_relevance_queries=dedupe,
            )
            effort[(qname, dedupe)] = outcome.metrics
        rows.append(
            (
                qname,
                len(lpq_all),
                len(lpq_dedup),
                len(nfq_all),
                len(nfq_dedup),
                effort[(qname, False)].relevance_evaluations,
                effort[(qname, True)].relevance_evaluations,
            )
        )
    return rows, effort


def test_e7_report(benchmark, capsys):
    rows, effort = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E7: containment-based de-duplication of relevance queries",
            [
                "query",
                "lpq",
                "lpq-dedup",
                "nfq",
                "nfq-dedup",
                "evals",
                "evals-dedup",
            ],
            rows,
        )
    for qname, *_ in QUERIES:
        with_dedup = effort[(qname, True)]
        without = effort[(qname, False)]
        # De-duplication never changes the answer...
        assert with_dedup.result_rows == without.result_rows, qname
        assert with_dedup.calls_invoked == without.calls_invoked, qname
        # ...and never increases the evaluation effort.
        assert (
            with_dedup.relevance_evaluations <= without.relevance_evaluations
        ), qname
    # At least one workload benefits visibly.
    assert any(row[1] > row[2] or row[3] > row[4] for row in rows)


@pytest.mark.parametrize("dedupe", [False, True], ids=["no-dedup", "dedup"])
def test_e7_benchmark(benchmark, dedupe):
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=20, seed=19))
    query = parse_pattern("/hotels//hotel//nearby//restaurant//name")

    def run():
        outcome, _ = evaluate_workload(
            wl,
            query=query,
            strategy=Strategy.LAZY_NFQ,
            dedupe_relevance_queries=dedupe,
        )
        return outcome.metrics.relevance_evaluations

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
