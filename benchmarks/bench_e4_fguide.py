"""E4 — F-guides: relevance detection on the guide vs on the document.

Paper claims (Section 6.2): the F-guide is "typically much more compact"
than the document; LPQs "yield the same result on a document and on its
F-guide", so one "can get better performance on its F-guide".

Regenerates: guide size vs document size, and the wall-clock time of
one full relevance-detection pass (all NFQs of the paper query) run
directly on the document vs via guide lookup + residual filtering.
"""

import time

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.lazy.fguide import FGuide
from repro.lazy.relevance import build_nfqs
from repro.pattern.match import Matcher
from repro.workloads.hotels import (
    HotelsWorkloadParams,
    build_hotels_workload,
    paper_query,
)

SIZES = [50, 200, 500, 1000, 2000]


def workload_of(n):
    return build_hotels_workload(
        HotelsWorkloadParams(n_hotels=n, extra_hotels_via_service=0, seed=13)
    )


def detection_on_document(nfqs, document):
    found = set()
    for rq in nfqs:
        for node in Matcher(rq.pattern).evaluate(document).distinct_nodes():
            found.add(node.node_id)
    return found


def detection_on_guide(nfqs, guide, document):
    from repro.lazy.engine import _verify_candidate

    found = set()
    for rq in nfqs:
        candidates = guide.candidates(
            rq.linear_steps,
            rq.output.function_names,
            descendant_tail=rq.descendant_tail,
        )
        if not candidates:
            continue
        matcher = Matcher(rq.pattern)
        for call in candidates:
            if _verify_candidate(rq, call, matcher):
                found.add(call.node_id)
    return found


def sweep():
    rows = []
    times = {}
    for n in SIZES:
        wl = workload_of(n)
        document = wl.make_document()
        nfqs = build_nfqs(paper_query())
        guide = FGuide(document)

        start = time.perf_counter()
        on_doc = detection_on_document(nfqs, document)
        doc_time = time.perf_counter() - start

        start = time.perf_counter()
        on_guide = detection_on_guide(nfqs, guide, document)
        guide_time = time.perf_counter() - start
        guide.detach()

        assert on_guide >= on_doc  # residual filtering is lenient-safe
        stats = document.stats()
        rows.append(
            (
                n,
                stats.total_nodes,
                guide.size(),
                stats.function_nodes,
                doc_time * 1000,
                guide_time * 1000,
                f"{doc_time / max(guide_time, 1e-9):.1f}x",
            )
        )
        times[n] = (doc_time, guide_time)
    return rows, times


def test_e4_report(benchmark, capsys):
    rows, times = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E4: relevance detection — document scan vs F-guide",
            [
                "n_hotels",
                "doc_nodes",
                "guide_nodes",
                "calls",
                "doc_ms",
                "guide_ms",
                "speedup",
            ],
            rows,
        )
    # Compactness: the guide stays tiny while the document grows.
    assert all(row[2] <= 8 for row in rows)
    # Detection on the guide wins, and the gap grows with size.
    for n in SIZES[1:]:
        doc_time, guide_time = times[n]
        assert guide_time < doc_time
    assert times[SIZES[-1]][0] / times[SIZES[-1]][1] > times[SIZES[0]][0] / max(
        times[SIZES[0]][1], 1e-9
    ) * 0.5  # allow noise, but the large case must not collapse


def test_e4_lpq_guide_equivalence(benchmark):
    """The exact Section 6.2 property, timed at the largest size."""
    from repro.lazy.relevance import linear_path_queries

    wl = workload_of(SIZES[-1])
    document = wl.make_document()
    guide = FGuide(document)
    lpqs = linear_path_queries(paper_query(), dedupe=False)

    def lookup_all():
        out = set()
        for rq in lpqs:
            for node in guide.candidates(
                rq.linear_steps, descendant_tail=rq.descendant_tail
            ):
                out.add(node.node_id)
        return out

    on_guide = benchmark(lookup_all)
    on_doc = set()
    for rq in lpqs:
        for node in Matcher(rq.pattern).evaluate(document).distinct_nodes():
            on_doc.add(node.node_id)
    guide.detach()
    assert on_guide == on_doc


def test_e4_engine_end_to_end(benchmark):
    wl = workload_of(500)

    def run():
        outcome, _ = evaluate_workload(
            wl, strategy=Strategy.LAZY_NFQ, use_fguide=True
        )
        return outcome.metrics.calls_invoked

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
