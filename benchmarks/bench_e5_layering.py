"""E5 — Layering and parallelism: NFQ re-evaluations and rounds.

Paper claims (Sections 4.3-4.4): "Running NFQA on smaller groups may
yield much less NFQ evaluations than doing so on the initial set"; with
the independence condition "we can invoke all the returned calls in
parallel and spare the re-evaluations ... needed after triggering each
call".

Regenerates: relevance-query evaluations, invocation rounds and
simulated (parallel) time for plain NFQA vs layered NFQA vs layered +
parallel NFQA on chained-call documents of growing depth and width.
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.workloads.chains import build_chain_workload

SHAPES = [(4, 2), (6, 4), (8, 8), (10, 12)]  # (depth, width)
VARIANTS = [
    ("plain-nfqa", dict(use_layers=False)),
    ("layered", dict(use_layers=True, parallel=False)),
    ("layered+par", dict(use_layers=True, parallel=True)),
]


def sweep():
    rows = []
    metrics = {}
    for depth, width in SHAPES:
        wl = build_chain_workload(depth=depth, width=width)
        for name, extra in VARIANTS:
            outcome, _ = evaluate_workload(
                wl, strategy=Strategy.LAZY_NFQ, **extra
            )
            m = outcome.metrics
            rows.append(
                (
                    f"d={depth},w={width}",
                    name,
                    m.calls_invoked,
                    m.relevance_evaluations,
                    m.invocation_rounds,
                    m.simulated_parallel_s,
                )
            )
            metrics[(depth, width, name)] = m
    return rows, metrics


def test_e5_report(benchmark, capsys):
    rows, metrics = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E5: layering & parallelism on chained calls",
            ["chain", "variant", "calls", "nfq_evals", "rounds", "par_time_s"],
            rows,
        )
    for depth, width in SHAPES:
        plain = metrics[(depth, width, "plain-nfqa")]
        layered = metrics[(depth, width, "layered")]
        parallel = metrics[(depth, width, "layered+par")]
        # Same work is done (relevant rewritings invoke the same calls)...
        assert (
            plain.calls_invoked
            == layered.calls_invoked
            == parallel.calls_invoked
        )
        # ...with fewer NFQ evaluations once layered,
        assert layered.relevance_evaluations < plain.relevance_evaluations
        # and fewer rounds + less elapsed time once parallelised.
        assert parallel.invocation_rounds < layered.invocation_rounds
        assert parallel.simulated_parallel_s < layered.simulated_parallel_s
        # Parallel rounds equal the chain depth: one round per level.
        assert parallel.invocation_rounds == depth


@pytest.mark.parametrize(
    "name,extra", VARIANTS, ids=[name for name, _ in VARIANTS]
)
def test_e5_benchmark(benchmark, name, extra):
    wl = build_chain_workload(depth=6, width=6)

    def run():
        outcome, _ = evaluate_workload(wl, strategy=Strategy.LAZY_NFQ, **extra)
        return outcome.metrics.relevance_evaluations

    benchmark(run)
