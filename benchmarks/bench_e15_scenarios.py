"""E15 — the adversarial scenario matrix: every regime vs the oracle.

The workload factory (:mod:`repro.workloads.factory`) generates seeded
hostile regimes the hand-built benches never hit: deep recursion with
cold subtrees, BINDINGS pushing, distinct-key cache floods,
multi-child-root standing queries, bursty multi-tenant arrival traces,
and a >=100k-node document.  This experiment drives the full engine
configuration matrix over *every* named regime and holds it to the
differential bar:

* **Static matrix** (the headline): for every regime and every query in
  its set, naive materialisation and each optimized configuration
  (lazy, +concurrency, +cache, +incremental, +shared, +shared+inc)
  must produce identical value rows; configurations that promise
  invocation-invisibility (incremental, shared) must also reproduce
  the plain-lazy invocation log call site by call site.

* **Evolution**: regimes with a mutation trace replay it on twin
  documents under a maintained and an unmaintained standing query —
  identical rows and identical cumulative logs per step.  The
  multi-child-root regime must take the ``AnswerCache`` full-rematch
  fallback (``full_matches > 0``) while staying invisible.

* **Serving**: the bursty-tenants regime drives a
  :class:`~repro.serve.QueryServer` through its jittered arrival trace
  against independent refresh loops — per subscriber, per round,
  identical rows and logs, with most rounds touching only *some*
  documents (the non-lockstep case).

* **Diagnostics**: per-regime signature counters proving each regime
  exercises what it claims — nonzero projection pruning on recursive
  data, overlay rows under BINDINGS, cache hits starved by the
  distinct-key flood.

Tables land in ``BENCH_e15.json``; headline assertions are re-checked
against the emitted file so a broken emitter fails the bench.

Set ``E15_N`` (default 100000) to shrink the large-document regime for
smoke runs — the >=100k-node claim only arms at full size.
"""

import os
import time

from bench_harness import print_table, read_bench_json, run_once
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.serve import QueryServer
from repro.workloads.factory import REGIMES, regime

LARGE_N = int(os.environ.get("E15_N", "100000"))
FULL_SIZE = LARGE_N >= 100_000  # the >=100k-node claim arms at full size

# The optimized configurations under differential test, and (for the
# log-pinned subset) the invisibility contract each one carries.
CONFIGS = {
    "lazy": dict(strategy=Strategy.LAZY_NFQ),
    "lazy+concurrent": dict(strategy=Strategy.LAZY_NFQ, max_concurrency=8),
    "lazy+cache": dict(strategy=Strategy.LAZY_NFQ, call_cache=True),
    "lazy+incremental": dict(strategy=Strategy.LAZY_NFQ, incremental=True),
    "lazy+shared": dict(strategy=Strategy.LAZY_NFQ, shared_matching=True),
    "lazy+shared+inc": dict(
        strategy=Strategy.LAZY_NFQ, shared_matching=True, incremental=True
    ),
}
# Concurrency batches calls (order may legally differ inside a round)
# and the cache elides duplicate invocations, so only these three pin
# the exact invocation log against plain lazy.
LOG_PINNED = ("lazy+incremental", "lazy+shared", "lazy+shared+inc")


def regime_workload(name):
    if name.startswith("large-document"):
        # Both scale regimes (arena-built 1M and the 100k object-graph
        # compatibility twin) shrink to E15_N here; E16 owns full scale.
        return regime(name, min_nodes=LARGE_N)
    return regime(name)


def invocations(bus):
    return [
        (r.service_name, r.call_node_id, r.fault) for r in bus.log.records
    ]


# ---------------------------------------------------------------------------
# Headline: the static differential matrix over every regime
# ---------------------------------------------------------------------------


def scenario_matrix():
    rows = []
    for name in REGIMES:
        gen = regime_workload(name)
        stats = gen.describe()
        total_rows = 0
        pruned = 0
        overlay_rows = 0
        started = time.perf_counter()
        for qi in range(gen.spec.n_queries):
            query = gen.query_for(qi)
            doc = gen.document_for_query(qi)
            reference = gen.oracle(query, doc).value_rows()
            total_rows += len(reference)
            base_out, base_log = gen.evaluate(query, doc, **CONFIGS["lazy"])
            assert base_out.value_rows() == reference, (name, qi, "lazy")
            if base_out.overlay is not None:
                overlay_rows += base_out.overlay.row_count
            for label, kwargs in CONFIGS.items():
                if label == "lazy":
                    continue
                out, log = gen.evaluate(query, doc, **kwargs)
                assert out.value_rows() == reference, (name, qi, label)
                if label in LOG_PINNED:
                    assert log == base_log, (name, qi, label)
                pruned = max(
                    pruned, out.metrics.projection_skipped_subtrees
                )
        elapsed_ms = (time.perf_counter() - started) * 1000
        rows.append(
            (
                name,
                stats["nodes"],
                stats["calls"],
                gen.spec.n_queries,
                len(CONFIGS) + 1,  # + the naive oracle
                total_rows,
                pruned,
                overlay_rows,
                gen.spec.fault_plan,
                round(elapsed_ms, 1),
            )
        )
    return rows


def test_e15_scenario_matrix(benchmark, capsys):
    rows = run_once(benchmark, scenario_matrix)
    with capsys.disabled():
        print_table(
            "E15: adversarial scenario matrix — naive vs optimized configs"
            f" ({len(REGIMES)} regimes, large N={LARGE_N})",
            [
                "regime",
                "nodes",
                "calls",
                "queries",
                "configs",
                "rows",
                "proj_pruned",
                "overlay_rows",
                "faults",
                "ms",
            ],
            rows,
            note=(
                "every config pinned to the naive oracle's rows; "
                "incremental/shared also pinned to the lazy invocation log"
            ),
        )
    by_regime = {row[0]: row for row in rows}
    assert len(rows) >= 8, "the matrix must cover >= 8 named regimes"
    # Recursive data must reach the projection screen and actually prune
    # (the counter E12 always reported as zero on flat hotels data).
    assert by_regime["deep-recursion"][6] > 0
    # The BINDINGS regime must actually record overlay rows.
    assert by_regime["bindings-push"][7] > 0
    if FULL_SIZE:
        assert by_regime["large-document"][1] >= 100_000
    # The emitted file must carry the same verdicts.
    data = read_bench_json("e15")
    table = next(
        body
        for title, body in data["tables"].items()
        if title.startswith("E15: adversarial")
    )
    emitted = {r[0]: r for r in table["rows"]}
    assert len(emitted) >= 8
    assert emitted["deep-recursion"][6] > 0
    assert emitted["bindings-push"][7] > 0


# ---------------------------------------------------------------------------
# Evolution: maintained vs full standing queries over mutation traces
# ---------------------------------------------------------------------------


def evolution_sweep():
    rows = []
    for name in REGIMES:
        gen = regime_workload(name)
        if gen.spec.n_mutations == 0:
            continue
        query = gen.query_for(0)

        def standing(maintain):
            bus = gen.make_bus()
            config = gen.engine_config(
                strategy=Strategy.LAZY_NFQ, maintain_answers=maintain
            )
            engine = LazyQueryEvaluator(bus, config=config)
            return ContinuousQuery(engine, query, gen.make_document(0)), bus

        kept, kept_bus = standing(True)
        full, full_bus = standing(False)
        steps = 0
        for step in gen.mutation_trace():
            gen.apply_mutation(step, (kept.document, full.document))
            a = kept.refresh()
            b = full.refresh()
            assert a.value_rows() == b.value_rows(), (name, step)
            assert invocations(kept_bus) == invocations(full_bus), (
                name,
                step,
            )
            steps += 1
        counters = (
            kept.answer_cache.counters() if kept.answer_cache else {}
        )
        scoped = kept.answer_cache._scoped if kept.answer_cache else None
        kept.close()
        full.close()
        rows.append(
            (
                name,
                steps,
                "yes",
                scoped,
                counters.get("full_matches", 0),
                counters.get("screens", 0),
                counters.get("scope_rematches", 0),
            )
        )
    return rows


def test_e15_evolution(benchmark, capsys):
    rows = run_once(benchmark, evolution_sweep)
    with capsys.disabled():
        print_table(
            "E15: evolution differential — maintained vs full re-evaluation",
            [
                "regime",
                "steps",
                "agree",
                "scoped",
                "full_matches",
                "screens",
                "scope_rematches",
            ],
            rows,
            note="identical rows and cumulative invocation logs per step",
        )
    by_regime = {row[0]: row for row in rows}
    # Multi-child-root standing queries must take (and survive) the
    # AnswerCache full-rematch fallback.
    multi = by_regime["multi-root-standing"]
    assert multi[3] is False and multi[4] > 0, multi


# ---------------------------------------------------------------------------
# Serving: the bursty multi-tenant arrival trace vs independent loops
# ---------------------------------------------------------------------------


def serving_sweep():
    gen = regime_workload("bursty-tenants")
    spec = gen.spec
    config = EngineConfig.serving(strategy=Strategy.LAZY_NFQ)

    oracle_bus = gen.make_bus()
    oracle_engine = LazyQueryEvaluator(oracle_bus, config=config)
    oracle_docs = [gen.make_document(i) for i in range(spec.n_documents)]
    server_bus = gen.make_bus()
    server = QueryServer(server_bus, config=config)
    server_docs = [gen.make_document(i) for i in range(spec.n_documents)]

    loops = []
    subs = []
    for i in range(spec.n_queries):
        query = gen.query_for(i)
        doc = gen.document_for_query(i)
        loops.append((doc, ContinuousQuery(oracle_engine, query, oracle_docs[doc])))
        subs.append(
            server.subscribe(
                gen.query_for(i),
                server_docs[doc],
                tenant=gen.tenant_for(i),
                name=f"sub-{i}",
            )
        )
    assert invocations(oracle_bus) == invocations(server_bus)

    rows = []
    for rnd, due_docs in enumerate(gen.arrival_trace()):
        for doc in due_docs:
            gen.apply_mutation(
                f"round{rnd}|doc{doc}", (oracle_docs[doc], server_docs[doc])
            )
        refreshed = 0
        for doc, loop in loops:
            if doc in due_docs:
                loop.refresh()
                refreshed += 1
        report = server.run_round()
        expected = [set(loop.peek().value_rows()) for _, loop in loops]
        assert [set(sub.rows) for sub in subs] == expected, rnd
        assert invocations(oracle_bus) == invocations(server_bus), rnd
        rows.append(
            (
                rnd,
                len(due_docs),
                refreshed,
                len(report.outcomes),
                "yes",
            )
        )
    for _, loop in loops:
        loop.close()
    server.close()
    return rows


def test_e15_bursty_serving(benchmark, capsys):
    rows = run_once(benchmark, serving_sweep)
    with capsys.disabled():
        print_table(
            "E15: bursty multi-tenant serving — server rounds vs loops",
            ["round", "due_docs", "loop_refreshes", "served", "agree"],
            rows,
            note=(
                "non-lockstep: only documents in the arrival trace move "
                "each round; rows and logs pinned per subscriber"
            ),
        )
    # The trace must actually be non-lockstep: some round leaves at
    # least one document untouched, and some round moves more than one.
    due_counts = [row[1] for row in rows]
    assert any(c < REGIMES["bursty-tenants"].n_documents for c in due_counts)
    assert any(c > 0 for c in due_counts)


# ---------------------------------------------------------------------------
# Diagnostics: cache-adversarial argument streams
# ---------------------------------------------------------------------------


def cache_sweep():
    rows = []
    for name in ("baseline", "cache-flood"):
        gen = regime_workload(name)
        out, _ = gen.evaluate(
            gen.query_for(0), 0, **CONFIGS["lazy+cache"]
        )
        rows.append(
            (
                name,
                gen.spec.argument_pool or "distinct",
                out.metrics.calls_invoked,
                out.metrics.cache_hits,
            )
        )
    return rows


def test_e15_cache_adversary(benchmark, capsys):
    rows = run_once(benchmark, cache_sweep)
    with capsys.disabled():
        print_table(
            "E15: cache-adversarial argument streams (CallCache hit rates)",
            ["regime", "key_pool", "calls_invoked", "cache_hits"],
            rows,
            note="the distinct-key flood must starve the cache",
        )
    by_regime = {row[0]: row for row in rows}
    # A shared key pool produces hits; the distinct-key flood must not
    # beat it (and should produce none at all).
    assert by_regime["baseline"][3] > by_regime["cache-flood"][3], rows
