"""E9 — Answer completeness and cost under service faults.

The paper assumes cooperative services; this experiment does not.  Every
service of the ``hotels`` workload is wrapped in a seeded
``FlakyService`` and the fault rate is swept upward.  For each of the
five strategies we measure, under ``FaultPolicy.RETRY``:

* **completeness** — result rows as a fraction of the fault-free
  answer (RETRY should hold it at 1.0 for moderate fault rates, since
  retried calls eventually succeed);
* **simulated time** — the price of resilience: failed attempts and
  backoff waits are charged to the clock;
* fault/retry/frozen counts from the resilience metrics.

A second table contrasts the four fault policies at a fixed rate on the
lazy-NFQ strategy: RAISE dies, SKIP loses answers *silently*, FREEZE
loses them *visibly* (calls stay intensional), RETRY recovers them.
"""

import pytest

from bench_harness import print_table, run_once
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.catalog import FlakyService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.services.resilience import CircuitBreakerPolicy, RetryPolicy
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

FAULT_RATES = [0.0, 0.1, 0.25, 0.4]
STRATEGIES = [
    ("naive", Strategy.NAIVE),
    ("top-down", Strategy.TOP_DOWN),
    ("lazy-lpq", Strategy.LAZY_LPQ),
    ("lazy-nfq", Strategy.LAZY_NFQ),
    ("lazy-nfq-typed", Strategy.LAZY_NFQ_TYPED),
]
RETRY = RetryPolicy(max_attempts=5, base_backoff_s=0.02)


def workload():
    # Default-shaped hotels scenario: a multi-row answer, so
    # completeness has something to lose.
    return build_hotels_workload(HotelsWorkloadParams(n_hotels=20))


def flaky_bus(wl, rate, seed=2004):
    registry = ServiceRegistry(
        FlakyService(wl.registry.resolve(name), fault_rate=rate, seed=seed + i)
        for i, name in enumerate(wl.registry.names())
    )
    return ServiceBus(registry)


def evaluate(wl, strategy, rate, fault_policy=FaultPolicy.RETRY, **kwargs):
    bus = flaky_bus(wl, rate)
    config = EngineConfig(
        strategy=strategy,
        fault_policy=fault_policy,
        retry=RETRY,
        breaker=CircuitBreakerPolicy(failure_threshold=10),
        **kwargs,
    )
    engine = LazyQueryEvaluator(bus, schema=wl.schema, config=config)
    return engine.evaluate(wl.query, wl.make_document()), bus


def sweep():
    wl = workload()
    rows = []
    baselines = {}
    for name, strategy in STRATEGIES:
        outcome, _ = evaluate(wl, strategy, 0.0)
        baselines[name] = len(outcome.value_rows()) or 1
    for rate in FAULT_RATES:
        for name, strategy in STRATEGIES:
            outcome, _ = evaluate(wl, strategy, rate)
            m = outcome.metrics
            rows.append(
                (
                    rate,
                    name,
                    m.calls_invoked,
                    m.faults,
                    m.retries,
                    m.calls_frozen,
                    len(outcome.value_rows()) / baselines[name],
                    m.simulated_parallel_s,
                )
            )
    return rows


def policy_contrast(rate=0.25):
    wl = workload()
    reference, _ = evaluate(wl, Strategy.LAZY_NFQ, 0.0)
    ref_rows = len(reference.value_rows()) or 1
    rows = []
    for policy in (FaultPolicy.SKIP, FaultPolicy.FREEZE, FaultPolicy.RETRY):
        outcome, _ = evaluate(wl, Strategy.LAZY_NFQ, rate, fault_policy=policy)
        m = outcome.metrics
        rows.append(
            (
                policy.value,
                m.faults,
                m.retries,
                m.calls_frozen,
                m.calls_skipped,
                len(outcome.value_rows()) / ref_rows,
                m.simulated_parallel_s,
            )
        )
    return rows


def test_e9_report(benchmark, capsys):
    rows = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E9: completeness & cost under faults (RETRY policy)",
            [
                "fault_rate",
                "strategy",
                "calls",
                "faults",
                "retries",
                "frozen",
                "completeness",
                "sim_time_par_s",
            ],
            rows,
            note="completeness = rows / fault-free rows for the strategy",
        )
    by_key = {(r[0], r[1]): r for r in rows}
    for name, _ in STRATEGIES:
        # No faults injected at rate 0: identical to the seed behavior.
        assert by_key[(0.0, name)][3] == 0
        assert by_key[(0.0, name)][6] == 1.0
        # Moderate fault rates: retry keeps the answer complete, at a
        # simulated-time price that grows with the fault rate.
        assert by_key[(0.25, name)][6] == 1.0
        assert by_key[(0.25, name)][7] >= by_key[(0.0, name)][7]
    assert any(by_key[(0.25, name)][4] > 0 for name, _ in STRATEGIES)


def test_e9_policy_contrast(benchmark, capsys):
    rows = run_once(benchmark, policy_contrast)
    with capsys.disabled():
        print_table(
            "E9b: fault policies at rate 0.25 (lazy-nfq)",
            [
                "policy",
                "faults",
                "retries",
                "frozen",
                "skipped",
                "completeness",
                "sim_time_par_s",
            ],
            rows,
        )
    by_policy = {r[0]: r for r in rows}
    # RETRY recovers the full answer; SKIP/FREEZE may lose rows but
    # never crash; only SKIP deletes document content.
    assert by_policy["retry"][5] == 1.0
    assert by_policy["skip"][4] >= 0 and by_policy["skip"][3] == 0
    assert by_policy["freeze"][4] == 0
    assert by_policy["freeze"][5] <= 1.0


@pytest.mark.parametrize("rate", [0.0, 0.25], ids=["rate0", "rate25"])
def test_e9_benchmark(benchmark, rate):
    wl = workload()

    def run():
        outcome, _ = evaluate(wl, Strategy.LAZY_NFQ, rate)
        return outcome.metrics.calls_invoked

    benchmark(run)
