"""E2 — How many calls does each relevance criterion fire?

Paper claims: LPQs "actually compute a superset of the relevant function
calls" (Section 3.1); NFQs retrieve "precisely" the relevant calls under
the any-output assumption (Proposition 1); types "rule out more
irrelevant calls" (Section 5).

Regenerates: invocation counts per strategy on the hotels and nightlife
scenarios — the invocation-count hierarchy
``typed-NFQ <= NFQ <= LPQ <= top-down/naive``.
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload
from repro.workloads.nightlife import NightlifeParams, build_nightlife_workload
from repro.workloads.queries import hotels_broad_query, hotels_rating_only_query

STRATEGIES = [
    ("naive", dict(strategy=Strategy.NAIVE)),
    ("top-down", dict(strategy=Strategy.TOP_DOWN)),
    ("lazy-lpq", dict(strategy=Strategy.LAZY_LPQ)),
    ("lazy-nfq-relaxed", dict(strategy=Strategy.LAZY_NFQ, drop_value_joins=True)),
    ("lazy-nfq", dict(strategy=Strategy.LAZY_NFQ)),
    ("lazy-nfq-typed", dict(strategy=Strategy.LAZY_NFQ_TYPED)),
]


def scenarios():
    hotels = build_hotels_workload(HotelsWorkloadParams(n_hotels=40, seed=11))
    nightlife = build_nightlife_workload(
        NightlifeParams(n_theaters=12, n_restaurants=30)
    )
    return [
        ("hotels/selective", hotels, hotels.query),
        ("hotels/broad", hotels, hotels_broad_query()),
        ("hotels/rating-only", hotels, hotels_rating_only_query()),
        ("nightlife", nightlife, nightlife.query),
    ]


def sweep():
    rows = []
    counts = {}
    for scenario_name, workload, query in scenarios():
        for strategy_name, cfg in STRATEGIES:
            outcome, _ = evaluate_workload(workload, query=query, **cfg)
            rows.append(
                (
                    scenario_name,
                    strategy_name,
                    outcome.metrics.calls_invoked,
                    len(outcome.rows),
                )
            )
            counts[(scenario_name, strategy_name)] = outcome.metrics.calls_invoked
    return rows, counts


def test_e2_report(benchmark, capsys):
    rows, counts = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E2: service calls invoked per relevance criterion",
            ["scenario", "strategy", "calls", "rows"],
            rows,
        )
    for scenario_name, _, _ in [(s, None, None) for s, *_ in scenarios()]:
        assert (
            counts[(scenario_name, "lazy-nfq-typed")]
            <= counts[(scenario_name, "lazy-nfq")]
            <= counts[(scenario_name, "lazy-nfq-relaxed")]
            <= counts[(scenario_name, "lazy-lpq")]
            <= counts[(scenario_name, "naive")]
        ), scenario_name
        # Top-down fires the same set as LPQ (same positional criterion).
        assert counts[(scenario_name, "top-down")] == counts[
            (scenario_name, "lazy-lpq")
        ], scenario_name


@pytest.mark.parametrize(
    "name,cfg",
    [s for s in STRATEGIES if s[0] != "naive"],
    ids=[s[0] for s in STRATEGIES if s[0] != "naive"],
)
def test_e2_benchmark(benchmark, name, cfg):
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=25, seed=11))

    def run():
        outcome, _ = evaluate_workload(wl, **cfg)
        return outcome.metrics.calls_invoked

    benchmark(run)
