"""Shared harness for the experiment benchmarks.

Every ``bench_e*.py`` file regenerates one table/figure of the paper's
evaluation (reconstructed — see DESIGN.md §4 and EXPERIMENTS.md): it
prints the series the paper reports, asserts the qualitative claim
(who wins, how the gap moves), and exposes pytest-benchmark timings.
Run with::

    pytest benchmarks/ --benchmark-only -s

Besides the printed tables, every experiment emits a machine-readable
``BENCH_<name>.json`` at the repository root (``print_table`` routes
through :func:`emit_bench_json`; the experiment tag is read off the
table title).  CI and the benches themselves assert against these
files via :func:`read_bench_json`.
"""

from __future__ import annotations

import json
import re
import sys
import tracemalloc
from pathlib import Path

try:  # stdlib on POSIX; absent on some platforms
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None

from repro.lazy.config import EngineConfig
from repro.lazy.engine import LazyQueryEvaluator

#: Repository root — the ``BENCH_<name>.json`` files land here.
REPO_ROOT = Path(__file__).resolve().parent.parent

# Profile mode (see conftest.py): when a sink is installed here, every
# evaluate_workload() call is traced into it and the conftest prints an
# aggregate per-phase breakdown at session end.
_trace_state = {"sink": None, "collector": None}


def enable_trace(sink, collector):
    """Route every ``evaluate_workload()`` through *sink* (profile mode)."""
    _trace_state["sink"] = sink
    _trace_state["collector"] = collector


def trace_collector():
    """The shared in-memory collector, or None when profiling is off."""
    return _trace_state["collector"]


def evaluate_workload(workload, query=None, network=None, **config_kwargs):
    """One full evaluation over a fresh document; returns (outcome, bus)."""
    bus = workload.make_bus(network=network)
    if _trace_state["sink"] is not None:
        config_kwargs.setdefault("trace", _trace_state["sink"])
    engine = LazyQueryEvaluator(
        bus, schema=workload.schema, config=EngineConfig(**config_kwargs)
    )
    outcome = engine.evaluate(query or workload.query, workload.make_document())
    return outcome, bus


def run_once(benchmark, fn):
    """Run an expensive sweep exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title, headers, rows, note=None, bench=None):
    """Aligned plain-text experiment table.

    Also records the table into ``BENCH_<bench>.json`` (see
    :func:`emit_bench_json`).  *bench* defaults to the experiment tag
    parsed from the title (``"E11: ..."`` → ``e11``).
    """
    widths = [len(h) for h in headers]
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in text_rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    if note:
        print(f"({note})")
    if bench is None:
        tag = re.match(r"E(\d+)", title)
        bench = f"e{tag.group(1)}" if tag else None
    if bench is not None:
        emit_bench_json(bench, title, headers, rows, note=note)


def bench_json_path(bench):
    """Where ``BENCH_<bench>.json`` lives (repo root)."""
    return REPO_ROOT / f"BENCH_{bench}.json"


def peak_memory_kb():
    """This process's peak memory so far, in KiB (always >= 1).

    Prefers the OS high-water mark (``ru_maxrss``: KiB on Linux, bytes
    on macOS); falls back to tracemalloc's traced peak when the
    ``resource`` module is unavailable, so every ``BENCH_<name>.json``
    carries the figure on every platform.
    """
    if resource is not None:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - linux CI
            peak //= 1024
        if peak > 0:
            return int(peak)
    if tracemalloc.is_tracing():  # pragma: no cover - resource exists on CI
        _, traced_peak = tracemalloc.get_traced_memory()
        return max(1, traced_peak // 1024)
    return 1  # pragma: no cover - no measurement source at all


def emit_bench_json(bench, table, headers, rows, note=None):
    """Merge one table into ``BENCH_<bench>.json`` at the repo root.

    The file maps table titles to ``{headers, rows, note}`` so every
    test of a bench module contributes to the same document; existing
    titles are overwritten, unknown ones kept.  Rows are JSON-native
    (numbers stay numbers) so downstream assertions — the E12 bench,
    the CI perf-smoke job — can consume them without re-parsing text.
    """
    path = bench_json_path(bench)
    payload = {"bench": bench, "tables": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("tables"), dict):
                payload["tables"] = existing["tables"]
        except (ValueError, OSError):
            pass  # corrupt or unreadable: rewrite from scratch
    payload["tables"][table] = {
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "note": note,
    }
    payload["peak_rss_kb"] = peak_memory_kb()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_json(bench):
    """Load ``BENCH_<bench>.json``; raises if missing or malformed."""
    payload = json.loads(bench_json_path(bench).read_text())
    if payload.get("bench") != bench or "tables" not in payload:
        raise ValueError(f"malformed BENCH_{bench}.json")
    peak = payload.get("peak_rss_kb")
    if not isinstance(peak, int) or peak <= 0:
        raise ValueError(f"BENCH_{bench}.json lacks a peak_rss_kb figure")
    return payload


def _fmt(cell):
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
