"""Shared harness for the experiment benchmarks.

Every ``bench_e*.py`` file regenerates one table/figure of the paper's
evaluation (reconstructed — see DESIGN.md §4 and EXPERIMENTS.md): it
prints the series the paper reports, asserts the qualitative claim
(who wins, how the gap moves), and exposes pytest-benchmark timings.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from repro.lazy.config import EngineConfig
from repro.lazy.engine import LazyQueryEvaluator

# Profile mode (see conftest.py): when a sink is installed here, every
# evaluate_workload() call is traced into it and the conftest prints an
# aggregate per-phase breakdown at session end.
_trace_state = {"sink": None, "collector": None}


def enable_trace(sink, collector):
    """Route every ``evaluate_workload()`` through *sink* (profile mode)."""
    _trace_state["sink"] = sink
    _trace_state["collector"] = collector


def trace_collector():
    """The shared in-memory collector, or None when profiling is off."""
    return _trace_state["collector"]


def evaluate_workload(workload, query=None, network=None, **config_kwargs):
    """One full evaluation over a fresh document; returns (outcome, bus)."""
    bus = workload.make_bus(network=network)
    if _trace_state["sink"] is not None:
        config_kwargs.setdefault("trace", _trace_state["sink"])
    engine = LazyQueryEvaluator(
        bus, schema=workload.schema, config=EngineConfig(**config_kwargs)
    )
    outcome = engine.evaluate(query or workload.query, workload.make_document())
    return outcome, bus


def run_once(benchmark, fn):
    """Run an expensive sweep exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title, headers, rows, note=None):
    """Aligned plain-text experiment table."""
    widths = [len(h) for h in headers]
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in text_rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    if note:
        print(f"({note})")


def _fmt(cell):
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
