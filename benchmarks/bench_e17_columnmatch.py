"""E17 — column-native pattern matching: whole plans over arena columns.

E16's arena made candidate *enumeration* a column scan, but every
surviving candidate was still judged by the object-graph matcher.  The
column matcher (:mod:`repro.pattern.columnmatch`) compiles each pattern
into a slot-level plan and runs the entire match — boolean phase,
existence semijoins, enumeration — over the arena's int columns,
touching ``Node`` objects only for the final rows.  This experiment
holds the rewrite to its claims:

* **Throughput** (the headline): on the ``large-document`` regime the
  column-matched group pass must sustain >= 2x the E16 arena path's
  node-throughput at the full 1M-node size (>= 1.5x at smoke sizes,
  where fixed costs weigh more) — with *identical* rows per query,
  asserted before any timing, and the target of >= 8x over the plain
  object walk reported alongside.

* **Differential matrix**: across every factory regime and query, the
  column configurations (``arena+colmatch``, ``arena+shared+colmatch``,
  ``arena+shared+shard4+colmatch``) must reproduce the naive oracle's
  rows and the plain shared configuration's invocation log call site by
  call site — the column plan is an access path, never a semantics
  change.  Stand-downs (OR members, interior wildcards) surface as
  ``column_fallbacks`` and are answered by the object walk.

* **Shard determinism**: the sharded column pass must return the same
  composed rows for every shard count and for threaded vs serial
  dispatch, scoped passes included.

Tables land in ``BENCH_e17.json`` (with the harness's ``peak_rss_kb``
memory figure); headline assertions are re-checked against the emitted
file so a broken emitter fails the bench.

Set ``E17_N`` (default 1000000) to shrink the scale regime for smoke
runs — the >= 2x claim and the 1M-node floor only arm at full size.
"""

import os
import time

from bench_harness import print_table, read_bench_json, run_once
from repro.axml.index import LabelIndex
from repro.lazy.config import Strategy
from repro.pattern.match import MatchCounter, MatchSet
from repro.pattern.multimatch import PatternGroup
from repro.pattern.parse import parse_pattern
from repro.pattern.shards import ShardedPatternGroup
from repro.services.scheduler import SchedulerPolicy
from repro.workloads.factory import REGIMES, regime

E17_N = int(os.environ.get("E17_N", "1000000"))
FULL_SIZE = E17_N >= 1_000_000  # the 1M-node / >=2x claims arm here
MIN_SPEEDUP = 2.0 if FULL_SIZE else 1.5  # colmatch over the arena walk
MATRIX_N = min(E17_N, 100_000)  # the differential matrix's scale cap

# Same query family as E16, so the two benches' arena baselines are
# comparable: a descendant spine with a variable leaf, a value test,
# and a function test (svc1 is a factory service name).
E17_QUERY_TEXTS = (
    "/root//alpha/beta/$x",
    '/root//gamma/"2"',
    "/root//svc1()",
)


def scale_workload():
    return regime("large-document", min_nodes=E17_N)


def row_keys(match_set):
    return sorted(MatchSet.row_key(row) for row in match_set)


# ---------------------------------------------------------------------------
# Headline: group-pass node-throughput, column plans vs the arena walk
# ---------------------------------------------------------------------------


def throughput_sweep():
    gen = scale_workload()
    document = gen.make_document(0)
    arena = document.arena
    assert arena is not None, "the scale regime builds on the arena path"
    nodes = arena.live_nodes
    index = LabelIndex(document, arena=arena)
    members = {
        text: parse_pattern(text, name=f"e17-{i}")
        for i, text in enumerate(E17_QUERY_TEXTS)
    }
    variants = (
        ("object-walk", dict()),
        ("arena", dict(index=index, arena=arena)),
        ("arena+colmatch", dict(index=index, arena=arena, column_match=True)),
    )
    rows = []
    reference = None
    timings = {}
    counters = {}
    for label, kwargs in variants:
        counter = MatchCounter()
        group = PatternGroup(members, counter=counter, **kwargs)
        started = time.perf_counter()
        result = group.evaluate(document)
        elapsed = time.perf_counter() - started
        keys = {text: row_keys(result.match_sets[text]) for text in members}
        if reference is None:
            reference = keys
        else:
            assert keys == reference, f"{label} changed the rows"
        timings[label] = elapsed
        counters[label] = counter
        rows.append(
            (
                label,
                nodes,
                len(members),
                sum(len(k) for k in keys.values()),
                round(elapsed, 3),
                round(nodes * len(members) / elapsed / 1000, 1),
                round(timings["object-walk"] / elapsed, 2),
                round(timings.get("arena", elapsed) / elapsed, 2),
            )
        )
    index.detach()
    # The column pass must have answered every member itself: rows came
    # out of slot space and nothing stood down.
    colmatch = counters["arena+colmatch"]
    assert colmatch.column_rows == rows[0][3], colmatch.column_rows
    assert colmatch.column_fallbacks == 0
    assert counters["arena"].column_rows == 0  # off stays off
    return rows


def test_e17_throughput(benchmark, capsys):
    rows = run_once(benchmark, throughput_sweep)
    with capsys.disabled():
        print_table(
            "E17: group-pass node-throughput — column plans vs arena walk"
            f" (large-document, N={E17_N})",
            [
                "variant",
                "nodes",
                "queries",
                "rows",
                "s",
                "knodes_per_s",
                "vs_object",
                "vs_arena",
            ],
            rows,
            note=(
                "identical rows per query asserted before timing; colmatch "
                f"must clear {MIN_SPEEDUP}x over the arena walk "
                "(>= 8x over the object walk is the full-size target)"
            ),
        )
    by_variant = {row[0]: row for row in rows}
    if FULL_SIZE:
        assert by_variant["arena+colmatch"][1] >= 1_000_000
    # Every variant returned the same number of rows (full equality is
    # asserted inside the sweep, per query).
    assert len({row[3] for row in rows}) == 1
    assert by_variant["arena+colmatch"][7] >= MIN_SPEEDUP, rows
    # The emitted file must carry the same verdict.
    data = read_bench_json("e17")
    table = next(
        body
        for title, body in data["tables"].items()
        if title.startswith("E17: group-pass")
    )
    emitted = {r[0]: r for r in table["rows"]}
    assert emitted["arena+colmatch"][7] >= MIN_SPEEDUP
    assert data["peak_rss_kb"] > 0


# ---------------------------------------------------------------------------
# Differential matrix: column configs vs oracle rows and pinned logs
# ---------------------------------------------------------------------------

COLUMN_CONFIGS = {
    "arena+colmatch": dict(
        strategy=Strategy.LAZY_NFQ, arena=True, column_match=True
    ),
    "arena+shared+colmatch": dict(
        strategy=Strategy.LAZY_NFQ,
        arena=True,
        shared_matching=True,
        column_match=True,
    ),
    "arena+shared+shard4+colmatch": dict(
        strategy=Strategy.LAZY_NFQ,
        arena=True,
        shared_matching=True,
        shards=4,
        column_match=True,
    ),
}


def matrix_workload(name):
    if name.startswith("large-document"):
        return regime(name, min_nodes=MATRIX_N)
    return regime(name)


def matrix_sweep():
    rows = []
    for name in REGIMES:
        gen = matrix_workload(name)
        total_rows = 0
        column_rows = 0
        column_fallbacks = 0
        started = time.perf_counter()
        for qi in range(gen.spec.n_queries):
            query = gen.query_for(qi)
            doc = gen.document_for_query(qi)
            reference = gen.oracle(query, doc).value_rows()
            total_rows += len(reference)
            base_out, base_log = gen.evaluate(
                query, doc, strategy=Strategy.LAZY_NFQ, shared_matching=True
            )
            assert base_out.value_rows() == reference, (name, qi, "shared")
            for label, kwargs in COLUMN_CONFIGS.items():
                out, log = gen.evaluate(query, doc, **kwargs)
                assert out.value_rows() == reference, (name, qi, label)
                assert log == base_log, (name, qi, label)
                column_rows += out.metrics.column_rows
                column_fallbacks += out.metrics.column_fallbacks
        elapsed_ms = (time.perf_counter() - started) * 1000
        rows.append(
            (
                name,
                gen.spec.n_queries,
                len(COLUMN_CONFIGS) + 2,  # + shared baseline + naive oracle
                total_rows,
                column_rows,
                column_fallbacks,
                round(elapsed_ms, 1),
            )
        )
    return rows


def test_e17_differential_matrix(benchmark, capsys):
    rows = run_once(benchmark, matrix_sweep)
    with capsys.disabled():
        print_table(
            "E17: column-match differential matrix — every regime, rows and"
            f" logs pinned (large N={MATRIX_N})",
            [
                "regime",
                "queries",
                "configs",
                "rows",
                "column_rows",
                "fallbacks",
                "ms",
            ],
            rows,
            note=(
                "column configs pinned to the naive oracle's rows AND the "
                "shared config's invocation log, call site by call site; "
                "fallbacks are the object walk answering stood-down shapes"
            ),
        )
    assert len(rows) >= 8, "the matrix must cover >= 8 named regimes"
    # The column path must actually engage across the matrix...
    assert sum(row[4] for row in rows) > 0, rows
    # ...and the stand-down path must be exercised somewhere too (OR
    # members / interior wildcards exist in the factory's query mix).
    assert sum(row[5] for row in rows) > 0, rows
    data = read_bench_json("e17")
    table = next(
        body
        for title, body in data["tables"].items()
        if title.startswith("E17: column-match differential")
    )
    assert len(table["rows"]) >= 8


# ---------------------------------------------------------------------------
# Shard determinism: column passes across shard counts and dispatch modes
# ---------------------------------------------------------------------------


def shard_sweep():
    gen = regime("large-document", min_nodes=min(E17_N, 50_000))
    document = gen.make_document(0)
    arena = document.arena
    members = {
        text: parse_pattern(text, name=f"e17-shard-{i}")
        for i, text in enumerate(E17_QUERY_TEXTS)
    }
    serial = PatternGroup(members, arena=arena).evaluate(document)
    reference = {
        text: row_keys(serial.match_sets[text]) for text in members
    }
    rows = [("serial-walk", 0, sum(len(k) for k in reference.values()), "yes")]
    full = PatternGroup(members, arena=arena, column_match=True).evaluate(
        document
    )
    keys = {text: row_keys(full.match_sets[text]) for text in members}
    assert keys == reference, "unsharded column pass diverged"
    rows.append(("colmatch", 0, sum(len(k) for k in keys.values()), "yes"))
    for shards, use_threads in (
        (2, True),
        (4, True),
        (4, False),
        (8, True),
    ):
        group = ShardedPatternGroup(
            members,
            shards=shards,
            arena=arena,
            column_match=True,
            scheduler=SchedulerPolicy(
                max_concurrency=shards, use_threads=use_threads
            ),
        )
        result = group.evaluate(document)
        keys = {text: row_keys(result.match_sets[text]) for text in members}
        assert keys == reference, (shards, use_threads)
        rows.append(
            (
                f"colmatch+shard{shards}"
                + ("+threads" if use_threads else "+serial"),
                result.shard_passes,
                result.merge_rows,
                "yes",
            )
        )
    return rows


def test_e17_shard_determinism(benchmark, capsys):
    rows = run_once(benchmark, shard_sweep)
    with capsys.disabled():
        print_table(
            "E17: sharded column passes — determinism across counts and"
            " dispatch modes",
            ["variant", "shard_passes", "rows", "agree"],
            rows,
            note=(
                "composed column rows identical to the serial object walk "
                "for every shard count, threaded or not (scoped passes "
                "take the column path per shard)"
            ),
        )
    assert all(row[3] == "yes" for row in rows)
    # The sharded variants must actually shard (the scale regime's root
    # has plenty of depth-1 subtrees).
    assert all(row[1] > 0 for row in rows[2:]), rows
