"""E10 — Concurrent invocation rounds and the call cache.

Section 4's layering argument is what *licenses* concurrency: the calls
of one round are mutually independent, so a round can dispatch them as
a batch.  This experiment quantifies the payoff on the layered chain
workload (``depth`` rounds of ``width`` independent calls each):

* **makespan vs serial time** — sweeping ``max_concurrency``, the
  simulated round clock drops from the *sum* of call durations toward
  the *longest* call; with width 8 and 8 workers a round costs one
  call's latency, so the total clock falls by ~8x (the acceptance bar
  is <= 0.5x at ``max_concurrency=8``);
* **memoization** — folding the chain onto ``distinct_keys`` shared
  keys, the call cache converts the duplicated work into free hits
  while returning the identical answer.

Results must be bit-identical across widths — concurrency here is a
scheduling decision, never a semantic one (the differential suite in
``tests/test_differential.py`` enforces the same invariant on random
workloads; this file shows the headline numbers).
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.workloads.chains import build_chain_workload

DEPTH = 8
WIDTH = 8
WIDTHS = [1, 2, 4, 8, 16]


def workload(distinct_keys=None):
    return build_chain_workload(
        depth=DEPTH, width=WIDTH, latency_s=0.05, distinct_keys=distinct_keys
    )


def concurrency_sweep():
    wl = workload()
    rows = []
    for width in WIDTHS:
        outcome, bus = evaluate_workload(
            wl, strategy=Strategy.LAZY_NFQ, max_concurrency=width
        )
        m = outcome.metrics
        rows.append(
            (
                width,
                m.calls_invoked,
                m.batch_count,
                m.max_batch_width,
                m.serial_time_s,
                bus.clock_s,
                m.serial_time_s / bus.clock_s,
                len(outcome.value_rows()),
            )
        )
    return rows


def cache_contrast():
    # Two workers, so the cache's win shows on the *clock* too: a
    # folded round is two live calls instead of four per worker.
    rows = []
    for distinct_keys, cached in ((2, False), (2, True), (None, True)):
        wl = workload(distinct_keys=distinct_keys)
        outcome, bus = evaluate_workload(
            wl,
            strategy=Strategy.LAZY_NFQ,
            max_concurrency=2,
            call_cache=cached,
        )
        m = outcome.metrics
        rows.append(
            (
                distinct_keys or WIDTH,
                "on" if cached else "off",
                m.calls_invoked,
                m.cache_hits,
                m.serial_time_s,
                bus.clock_s,
                len(outcome.value_rows()),
            )
        )
    return rows


def test_e10_concurrency_report(benchmark, capsys):
    rows = run_once(benchmark, concurrency_sweep)
    with capsys.disabled():
        print_table(
            "E10: round makespan vs max_concurrency (chain 8x8)",
            [
                "workers",
                "calls",
                "batches",
                "batch_w",
                "serial_s",
                "clock_s",
                "speedup",
                "rows",
            ],
            rows,
            note="serial_s = sum of call durations; clock_s = the bus "
            "clock (sum of round makespans)",
        )
    by_width = {r[0]: r for r in rows}
    # Same answer and same work at every width: concurrency is pure
    # scheduling.
    assert len({(r[1], r[7]) for r in rows}) == 1
    # Width 1 degenerates to the serial clock.
    assert by_width[1][5] == pytest.approx(by_width[1][4])
    # The acceptance bar: 8 workers at least halve the simulated clock
    # (in fact a width-8 chain round collapses to ~one call's latency).
    assert by_width[8][5] <= 0.5 * by_width[1][5]
    # More workers never slow the simulated clock down.
    for slower, faster in zip(WIDTHS, WIDTHS[1:]):
        assert by_width[faster][5] <= by_width[slower][5] + 1e-9
    # Width 16 buys nothing over width 8: only 8 calls per round exist.
    assert by_width[16][5] == pytest.approx(by_width[8][5])


def test_e10_cache_report(benchmark, capsys):
    rows = run_once(benchmark, cache_contrast)
    with capsys.disabled():
        print_table(
            "E10b: call cache on the folded chain (8 branches, 2 workers)",
            ["keys", "cache", "calls", "hits", "serial_s", "clock_s", "rows"],
            rows,
        )
    off = rows[0]
    folded = rows[1]
    distinct = rows[2]
    # Folding 8 branches onto 2 keys: the cache absorbs the duplicate
    # calls, both the work and the clock drop, the answer is unchanged.
    assert folded[3] > 0
    assert folded[4] < off[4]
    assert folded[5] < off[5]
    assert folded[6] == off[6]
    # All-distinct keys: nothing to memoize, and nothing breaks.
    assert distinct[3] == 0


@pytest.mark.parametrize("width", [1, 8], ids=["serial", "conc8"])
def test_e10_benchmark(benchmark, width):
    wl = workload()

    def run():
        outcome, _ = evaluate_workload(
            wl, strategy=Strategy.LAZY_NFQ, max_concurrency=width
        )
        return outcome.metrics.calls_invoked

    benchmark(run)
