"""E8 (ablation) — speculative "just in case" parallelism.

Paper remark (end of Section 4.4): "one may be able to reduce the time
it takes to produce the answer by calling functions in parallel just in
case, and thereby introduce more parallelism ... [it] requires the use
of a cost model".

Regenerates: the cost model's two sides — extra (possibly wasted)
invocations vs. saved rounds/elapsed time — for careful (relevant-only)
vs speculative evaluation, sweeping how often speculation loses (the
fraction of hotels whose rating call returns a low rating and thereby
invalidates its sibling calls).
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

# hotel_five_star_fraction = probability that speculation on a hotel's
# nearby-calls pays off (a low rating wastes them).
PAYOFF_FRACTIONS = [1.0, 0.75, 0.5, 0.25]
MODES = [("careful", False), ("speculative", True)]


def workload_of(payoff):
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=24,
            extra_hotels_via_service=0,
            target_name_fraction=1.0,
            hotel_five_star_fraction=payoff,
            intensional_rating_fraction=1.0,
            intensional_restos_fraction=1.0,
            nested_rating_fraction=0.0,
            seed=37,
        )
    )


def sweep():
    rows = []
    metrics = {}
    for payoff in PAYOFF_FRACTIONS:
        wl = workload_of(payoff)
        for name, speculative in MODES:
            outcome, _ = evaluate_workload(
                wl, strategy=Strategy.LAZY_NFQ, speculative=speculative
            )
            m = outcome.metrics
            rows.append(
                (
                    f"{payoff:.0%}",
                    name,
                    m.calls_invoked,
                    m.invocation_rounds,
                    m.simulated_parallel_s,
                    len(outcome.rows),
                )
            )
            metrics[(payoff, name)] = (m, outcome.value_rows())
    return rows, metrics


def test_e8_report(benchmark, capsys):
    rows, metrics = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E8: careful vs speculative parallelism (Section 4.4 remark)",
            ["payoff", "mode", "calls", "rounds", "par_time_s", "rows"],
            rows,
            note="payoff = fraction of hotels whose rating justifies the bet",
        )
    for payoff in PAYOFF_FRACTIONS:
        careful, careful_rows = metrics[(payoff, "careful")]
        spec, spec_rows = metrics[(payoff, "speculative")]
        assert spec_rows == careful_rows  # never changes the answer
        assert spec.invocation_rounds <= careful.invocation_rounds
        assert spec.simulated_parallel_s <= careful.simulated_parallel_s + 1e-9
        assert spec.calls_invoked >= careful.calls_invoked
    # The bet's cost appears as the payoff fraction drops: wasted calls.
    waste_high = (
        metrics[(PAYOFF_FRACTIONS[-1], "speculative")][0].calls_invoked
        - metrics[(PAYOFF_FRACTIONS[-1], "careful")][0].calls_invoked
    )
    waste_low = (
        metrics[(PAYOFF_FRACTIONS[0], "speculative")][0].calls_invoked
        - metrics[(PAYOFF_FRACTIONS[0], "careful")][0].calls_invoked
    )
    assert waste_high > waste_low


@pytest.mark.parametrize("name,speculative", MODES, ids=[m for m, _ in MODES])
def test_e8_benchmark(benchmark, name, speculative):
    wl = workload_of(0.5)

    def run():
        outcome, _ = evaluate_workload(
            wl, strategy=Strategy.LAZY_NFQ, speculative=speculative
        )
        return outcome.metrics.calls_invoked

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
