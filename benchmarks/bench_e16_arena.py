"""E16 — the arena document store: columns vs objects at the million scale.

The arena (:mod:`repro.axml.arena`) stores the document a second time
as struct-of-arrays int columns; the group pass's descendant-candidate
enumeration, projection walk and index rebuild become tight loops over
those arrays.  This experiment holds the rewrite to its two claims:

* **Throughput** (the headline): on the ``large-document`` regime the
  arena-backed group pass must sustain >= 3x the object walk's
  node-throughput at the full 1M-node size (>= 2x at smoke sizes,
  where fixed costs weigh more) — with *identical* rows, which the
  sweep asserts per query before timing means anything.

* **Memory**: the seven columns plus the label table must cost <= 25%
  of the object graph's per-node bytes (``sys.getsizeof`` accounting
  on both sides).

* **Differential matrix**: across every factory regime and query, the
  arena configurations (``arena``, ``arena+shared``,
  ``arena+shared+shard4``) must reproduce the naive oracle's rows and
  the plain shared configuration's invocation log call site by call
  site — the arena is an access structure, never a semantics change.

* **Shard determinism**: the sharded group pass must return the same
  composed rows for every shard count and for threaded vs serial
  dispatch, with stand-down (``shard_passes == 0``) on ineligible
  passes — the merge is deterministic in shard index order, never in
  thread completion order.

Tables land in ``BENCH_e16.json``; headline assertions are re-checked
against the emitted file so a broken emitter fails the bench.

Set ``E16_N`` (default 1000000) to shrink the scale regime for smoke
runs — the >= 3x claim and the 1M-node floor only arm at full size.
"""

import os
import sys
import time

from bench_harness import print_table, read_bench_json, run_once
from repro.axml.index import LabelIndex
from repro.lazy.config import Strategy
from repro.pattern.match import MatchSet
from repro.pattern.multimatch import PatternGroup
from repro.pattern.parse import parse_pattern
from repro.pattern.shards import ShardedPatternGroup
from repro.services.scheduler import SchedulerPolicy
from repro.workloads.factory import REGIMES, regime

E16_N = int(os.environ.get("E16_N", "1000000"))
FULL_SIZE = E16_N >= 1_000_000  # the 1M-node / >=3x claims arm here
MIN_SPEEDUP = 3.0 if FULL_SIZE else 2.0
MATRIX_N = min(E16_N, 100_000)  # the differential matrix's scale cap

# The large-document regime generates child-edge queries only
# (descendant steps at 1M nodes are this bench's own, so the column
# scans are exercised deliberately, not by the luck of a sample).
# Labels come from the factory's fixed alphabet; svc1 is one of its
# service names.
E16_QUERY_TEXTS = (
    "/root//alpha/beta/$x",
    '/root//gamma/"2"',
    "/root//svc1()",
)


def scale_workload():
    return regime("large-document", min_nodes=E16_N)


def row_keys(match_set):
    return sorted(MatchSet.row_key(row) for row in match_set)


def invocations(bus):
    return [
        (r.service_name, r.call_node_id, r.fault) for r in bus.log.records
    ]


# ---------------------------------------------------------------------------
# Headline: group-pass node-throughput, arena vs the object walk
# ---------------------------------------------------------------------------


def throughput_sweep():
    gen = scale_workload()
    document = gen.make_document(0)
    arena = document.arena
    assert arena is not None, "the scale regime builds on the arena path"
    nodes = arena.live_nodes
    index = LabelIndex(document, arena=arena)
    members = {
        text: parse_pattern(text, name=f"e16-{i}")
        for i, text in enumerate(E16_QUERY_TEXTS)
    }
    variants = (
        ("object-walk", PatternGroup(members)),
        ("indexed-walk", PatternGroup(members, index=index)),
        ("arena", PatternGroup(members, index=index, arena=arena)),
    )
    rows = []
    reference = None
    timings = {}
    for label, group in variants:
        started = time.perf_counter()
        result = group.evaluate(document)
        elapsed = time.perf_counter() - started
        keys = {text: row_keys(result.match_sets[text]) for text in members}
        if reference is None:
            reference = keys
        else:
            assert keys == reference, f"{label} changed the rows"
        timings[label] = elapsed
        rows.append(
            (
                label,
                nodes,
                len(members),
                sum(len(k) for k in keys.values()),
                round(elapsed, 3),
                round(nodes * len(members) / elapsed / 1000, 1),
                round(timings["object-walk"] / elapsed, 2),
            )
        )
    index.detach()
    return rows


def test_e16_throughput(benchmark, capsys):
    rows = run_once(benchmark, throughput_sweep)
    with capsys.disabled():
        print_table(
            "E16: group-pass node-throughput — arena vs object walk"
            f" (large-document, N={E16_N})",
            [
                "variant",
                "nodes",
                "queries",
                "rows",
                "s",
                "knodes_per_s",
                "speedup",
            ],
            rows,
            note=(
                "identical rows per query asserted before timing; "
                f"arena must clear {MIN_SPEEDUP}x over the object walk"
            ),
        )
    by_variant = {row[0]: row for row in rows}
    if FULL_SIZE:
        assert by_variant["arena"][1] >= 1_000_000
    # Every variant returned the same number of rows (full equality is
    # asserted inside the sweep, per query).
    assert len({row[3] for row in rows}) == 1
    assert by_variant["arena"][6] >= MIN_SPEEDUP, rows
    # The emitted file must carry the same verdict.
    data = read_bench_json("e16")
    table = next(
        body
        for title, body in data["tables"].items()
        if title.startswith("E16: group-pass")
    )
    emitted = {r[0]: r for r in table["rows"]}
    assert emitted["arena"][6] >= MIN_SPEEDUP


# ---------------------------------------------------------------------------
# Memory: columns vs the object graph
# ---------------------------------------------------------------------------


def object_graph_bytes(document):
    """``sys.getsizeof`` accounting of the object tree's per-node cost:
    the ``Node`` itself plus its children list (labels excluded on both
    sides' shared strings; the arena side *includes* its label table,
    which is its whole per-label cost)."""
    total = 0
    for node in document.iter_nodes():
        total += sys.getsizeof(node)
        total += sys.getsizeof(node.children)
    return total


def memory_sweep():
    gen = regime("large-document", min_nodes=min(E16_N, 200_000))
    document = gen.make_document(0)
    arena = document.arena
    nodes = arena.live_nodes
    arena_bytes = arena.column_bytes()
    object_bytes = object_graph_bytes(document)
    return [
        (
            nodes,
            object_bytes,
            round(object_bytes / nodes, 1),
            arena_bytes,
            round(arena_bytes / nodes, 1),
            round(arena_bytes / object_bytes, 4),
        )
    ]


def test_e16_memory(benchmark, capsys):
    rows = run_once(benchmark, memory_sweep)
    with capsys.disabled():
        print_table(
            "E16: arena memory — column bytes vs the object graph",
            [
                "nodes",
                "object_bytes",
                "obj_b_per_node",
                "arena_bytes",
                "arena_b_per_node",
                "ratio",
            ],
            rows,
            note="the columns must cost <= 25% of the object graph",
        )
    assert rows[0][5] <= 0.25, rows
    data = read_bench_json("e16")
    table = next(
        body
        for title, body in data["tables"].items()
        if title.startswith("E16: arena memory")
    )
    assert table["rows"][0][5] <= 0.25


# ---------------------------------------------------------------------------
# Differential matrix: arena configs vs oracle rows and pinned logs
# ---------------------------------------------------------------------------

ARENA_CONFIGS = {
    "arena": dict(strategy=Strategy.LAZY_NFQ, arena=True),
    "arena+shared": dict(
        strategy=Strategy.LAZY_NFQ, arena=True, shared_matching=True
    ),
    "arena+shared+shard4": dict(
        strategy=Strategy.LAZY_NFQ,
        arena=True,
        shared_matching=True,
        shards=4,
    ),
}


def matrix_workload(name):
    if name.startswith("large-document"):
        return regime(name, min_nodes=MATRIX_N)
    return regime(name)


def matrix_sweep():
    rows = []
    for name in REGIMES:
        gen = matrix_workload(name)
        total_rows = 0
        shard_passes = 0
        arena_nodes = 0
        started = time.perf_counter()
        for qi in range(gen.spec.n_queries):
            query = gen.query_for(qi)
            doc = gen.document_for_query(qi)
            reference = gen.oracle(query, doc).value_rows()
            total_rows += len(reference)
            base_out, base_log = gen.evaluate(
                query, doc, strategy=Strategy.LAZY_NFQ, shared_matching=True
            )
            assert base_out.value_rows() == reference, (name, qi, "shared")
            for label, kwargs in ARENA_CONFIGS.items():
                out, log = gen.evaluate(query, doc, **kwargs)
                assert out.value_rows() == reference, (name, qi, label)
                assert log == base_log, (name, qi, label)
                shard_passes += out.metrics.shard_passes
                arena_nodes = max(arena_nodes, out.metrics.arena_nodes)
        elapsed_ms = (time.perf_counter() - started) * 1000
        rows.append(
            (
                name,
                gen.spec.n_queries,
                len(ARENA_CONFIGS) + 2,  # + shared baseline + naive oracle
                total_rows,
                arena_nodes,
                shard_passes,
                round(elapsed_ms, 1),
            )
        )
    return rows


def test_e16_differential_matrix(benchmark, capsys):
    rows = run_once(benchmark, matrix_sweep)
    with capsys.disabled():
        print_table(
            "E16: arena differential matrix — every regime, rows and logs"
            f" pinned (large N={MATRIX_N})",
            [
                "regime",
                "queries",
                "configs",
                "rows",
                "arena_nodes",
                "shard_passes",
                "ms",
            ],
            rows,
            note=(
                "arena configs pinned to the naive oracle's rows AND the "
                "shared config's invocation log, call site by call site"
            ),
        )
    assert len(rows) >= 8, "the matrix must cover >= 8 named regimes"
    # The arena must actually mirror documents in every regime...
    assert all(row[4] > 0 for row in rows), rows
    # ...and the sharded pass must engage somewhere in the matrix.
    assert sum(row[5] for row in rows) > 0, rows
    data = read_bench_json("e16")
    table = next(
        body
        for title, body in data["tables"].items()
        if title.startswith("E16: arena differential")
    )
    assert len(table["rows"]) >= 8


# ---------------------------------------------------------------------------
# Shard determinism: same rows for every shard count and dispatch mode
# ---------------------------------------------------------------------------


def shard_sweep():
    gen = regime("large-document", min_nodes=min(E16_N, 50_000))
    document = gen.make_document(0)
    arena = document.arena
    members = {
        text: parse_pattern(text, name=f"e16-shard-{i}")
        for i, text in enumerate(E16_QUERY_TEXTS)
    }
    serial = PatternGroup(members, arena=arena).evaluate(document)
    reference = {
        text: row_keys(serial.match_sets[text]) for text in members
    }
    rows = [("serial", 0, sum(len(k) for k in reference.values()), "yes")]
    for shards, use_threads in (
        (2, True),
        (4, True),
        (4, False),
        (8, True),
    ):
        group = ShardedPatternGroup(
            members,
            shards=shards,
            arena=arena,
            scheduler=SchedulerPolicy(
                max_concurrency=shards, use_threads=use_threads
            ),
        )
        result = group.evaluate(document)
        keys = {text: row_keys(result.match_sets[text]) for text in members}
        assert keys == reference, (shards, use_threads)
        rows.append(
            (
                f"shard{shards}" + ("+threads" if use_threads else "+serial"),
                result.shard_passes,
                result.merge_rows,
                "yes",
            )
        )
    return rows


def test_e16_shard_determinism(benchmark, capsys):
    rows = run_once(benchmark, shard_sweep)
    with capsys.disabled():
        print_table(
            "E16: shard-parallel group passes — determinism across counts"
            " and dispatch modes",
            ["variant", "shard_passes", "rows", "agree"],
            rows,
            note=(
                "composed rows identical to the serial pass for every "
                "shard count, threaded or not"
            ),
        )
    assert all(row[3] == "yes" for row in rows)
    # The sharded variants must actually shard (the scale regime's root
    # has plenty of depth-1 subtrees).
    assert all(row[1] > 0 for row in rows[1:]), rows
