"""E3 — Query pushing: data transfer and time vs result size.

Paper claim (Section 7 / Section 1): shipping the subquery with the call
— "only the name and address of five-star [restaurants] are returned" —
reduces data transfer and time; the experiments "demonstrate the gain
obtained from pushing queries to service providers".

Regenerates: bytes received and simulated evaluation time for push
modes ``none`` / ``filtered`` / ``bindings``, sweeping the size of each
service result (restaurants per call) at fixed selectivity.
"""

import pytest

from bench_harness import evaluate_workload, print_table, run_once
from repro.lazy.config import Strategy
from repro.services.service import PushMode
from repro.services.simulation import NetworkModel
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload

RESULT_SIZES = [2, 5, 10, 25, 50]
MODES = [
    ("none", PushMode.NONE),
    ("filtered", PushMode.FILTERED),
    ("bindings", PushMode.BINDINGS),
]
# A slow link makes transfer visible next to the fixed call latency.
NETWORK = NetworkModel(per_kb_s=0.2)


def workload_of(restaurants):
    # Every hotel qualifies (name + 5 stars, extensional), its restaurant
    # list is intensional, and only 20% of the returned restaurants are
    # five-star: the pushed subquery can prune 80% of every reply.
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=12,
            extra_hotels_via_service=0,
            target_name_fraction=1.0,
            hotel_five_star_fraction=1.0,
            intensional_rating_fraction=0.0,
            restaurants_per_hotel=restaurants,
            intensional_restos_fraction=1.0,
            nested_rating_fraction=0.0,
            five_star_fraction=0.2,
            seed=77,
        )
    )


def sweep():
    rows = []
    received = {}
    results = {}
    for size in RESULT_SIZES:
        wl = workload_of(size)
        for mode_name, mode in MODES:
            outcome, _ = evaluate_workload(
                wl,
                network=NETWORK,
                strategy=Strategy.LAZY_NFQ,
                push_mode=mode,
            )
            m = outcome.metrics
            rows.append(
                (
                    size,
                    mode_name,
                    m.calls_invoked,
                    m.bytes_received,
                    m.total_time_s,
                    len(outcome.rows),
                )
            )
            received[(size, mode_name)] = m.bytes_received
            results[(size, mode_name)] = outcome.value_rows()
    return rows, received, results


def test_e3_report(benchmark, capsys):
    rows, received, results = run_once(benchmark, sweep)
    with capsys.disabled():
        print_table(
            "E3: query pushing — transfer volume vs per-call result size",
            ["restos/call", "push", "calls", "bytes_recv", "time_s", "rows"],
            rows,
            note="fixed 20% five-star selectivity; slow simulated link",
        )
    for size in RESULT_SIZES:
        # Pushing never changes the answer...
        assert results[(size, "none")] == results[(size, "filtered")]
        assert results[(size, "none")] == results[(size, "bindings")]
        # ...and monotonically cuts the bytes shipped back.
        assert received[(size, "filtered")] <= received[(size, "none")]
        assert received[(size, "bindings")] <= received[(size, "filtered")]
    # The reduction factor tracks the selectivity (~5x at 20%) and the
    # absolute savings grow with the result size.
    large_ratio = received[(RESULT_SIZES[-1], "none")] / max(
        received[(RESULT_SIZES[-1], "bindings")], 1
    )
    assert large_ratio > 3
    small_gap = received[(RESULT_SIZES[0], "none")] - received[
        (RESULT_SIZES[0], "bindings")
    ]
    large_gap = received[(RESULT_SIZES[-1], "none")] - received[
        (RESULT_SIZES[-1], "bindings")
    ]
    assert large_gap > small_gap


@pytest.mark.parametrize("mode_name,mode", MODES, ids=[m for m, _ in MODES])
def test_e3_benchmark(benchmark, mode_name, mode):
    wl = workload_of(10)

    def run():
        outcome, _ = evaluate_workload(
            wl, network=NETWORK, strategy=Strategy.LAZY_NFQ, push_mode=mode
        )
        return outcome.metrics.bytes_received

    benchmark(run)
